"""The fault injector: plan decisions applied at the chokepoints.

A :class:`FaultInjector` sits between a :class:`FaultPlan` and one
device (or the virtual machine's comm layer) and implements the
*mechanics* of each injection site — raising the right exception,
corrupting the right bytes — together with the paired recovery:
bounded retry with exponential backoff charged as modeled time,
checksum-verified retransmission, and the bookkeeping that makes every
fault and recovery visible (plan trace, counters, ``lane="fault"``
spans on the runtime timeline).

Recovery cost is *modeled honestly*: every backoff interval becomes a
span on a dedicated ``fault`` lane that fences the stream it delays
(compute for launch retries, h2d/d2h for retransmits, comm for halo
recovery), and every retransmission moves real data again and charges
real modeled transfer time — a chaos run's makespan includes what its
faults cost.

When no plan is active (``REPRO_FAULTS=off``, the default) the
injector is inert: the device guards every call behind
:attr:`FaultInjector.active`, so the fault-free path is bitwise
identical — same results, same clocks, same stats — to a build
without this layer.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..device.memmodel import LaunchError, transfer_time
from ..memory.pool import DeviceOutOfMemory
from ..runtime.stream import Stream, StreamRuntime
from .plan import ZERO_COUNTERS, FaultCounters, FaultEvent, FaultPlan, FaultSpec


class TransferChecksumError(RuntimeError):
    """A corrupted transfer could not be repaired within the retry
    budget (the per-transfer checksum still mismatches)."""


class HaloDeliveryError(RuntimeError):
    """A halo message could not be delivered intact within the
    retransmission budget."""


def _crc(data: np.ndarray) -> int:
    """CRC32 of an array's raw bytes — the per-transfer checksum."""
    return zlib.crc32(np.ascontiguousarray(data).view(np.uint8).tobytes())


class FaultInjector:
    """Applies a :class:`FaultPlan` at one device's chokepoints.

    Parameters
    ----------
    plan:
        The shared fault plan, or ``None`` for an inert injector.
    device:
        The owning :class:`~repro.device.gpu.Device`; ``None`` for
        injectors that only guard the comm layer (the VM's halo
        injector passes stream runtimes explicitly).
    """

    def __init__(self, plan: FaultPlan | None, device=None):
        self.plan = plan
        self.device = device
        #: kernel name -> frozenset of poisoned (always-failing) sizes
        self._sticky_sizes: dict[str, frozenset[int]] = {}
        #: (kernel name, block size) -> the recorded sticky event
        self._sticky_events: dict[tuple[str, int], FaultEvent] = {}
        #: one lazily created ``fault`` lane per stream runtime
        self._fault_streams: dict[int, Stream] = {}

    @property
    def active(self) -> bool:
        """Whether any injection can happen.  The device guards every
        injector call behind this, keeping the off path bit-identical."""
        return self.plan is not None and bool(self.plan.specs)

    @property
    def counters(self) -> FaultCounters:
        return self.plan.counters if self.plan is not None else ZERO_COUNTERS

    # -- modeled recovery cost -----------------------------------------

    def _fault_stream(self, runtime: StreamRuntime) -> Stream:
        s = self._fault_streams.get(id(runtime))
        if s is None:
            s = Stream(runtime.timeline, "fault", "fault")
            self._fault_streams[id(runtime)] = s
        return s

    def charge_backoff(self, name: str, seconds: float,
                       runtime: StreamRuntime | None = None,
                       stream: Stream | None = None) -> None:
        """Charge one backoff interval as modeled time.

        The interval lands as a span on the ``fault`` lane, fenced both
        ways against ``stream`` (the lane the recovery delays): the
        backoff starts after the stream's queued work and the stream's
        next operation waits for the backoff to elapse.  Also advances
        the owning device's serial clock so ``REPRO_STREAMS=off``
        accounting stays consistent.
        """
        dev = self.device
        if runtime is None and dev is not None:
            runtime = dev.runtime
        if dev is not None:
            dev.clock += seconds
        if runtime is None:
            return
        target = stream if stream is not None else runtime.compute
        fault = self._fault_stream(runtime)
        fault.wait_event(target.record_event())
        fault.enqueue(name, seconds, "backoff")
        target.wait_event(fault.record_event())

    def charge_recovery(self, runtime: StreamRuntime, name: str,
                        seconds: float, cat: str = "restore",
                        stream: Stream | None = None) -> float:
        """Charge one rank-recovery step (restore transfer,
        redistribution, absorbed straggler stall) as modeled time.

        Like :meth:`charge_backoff` the span lands on the ``fault``
        lane fenced both ways against ``stream`` (default: compute) —
        a collective exchange cannot proceed until the recovery
        completes, and the recovery starts after the queued work.
        Returns ``seconds`` so callers can accumulate the cost.
        """
        target = stream if stream is not None else runtime.compute
        fault = self._fault_stream(runtime)
        fault.wait_event(target.record_event())
        fault.enqueue(name, seconds, cat)
        target.wait_event(fault.record_event())
        return seconds

    # -- Device.launch: sticky + transient failures --------------------

    def _sticky_spec(self, name: str) -> FaultSpec | None:
        # sticky specs are never consumed: the poisoned sizes fail
        # *every* time, which is what drives the halving series
        for spec in self.plan.specs:
            if (spec.site == "launch" and spec.kind == "sticky"
                    and spec.matches("launch", "sticky", name)):
                return spec
        return None

    def _poisoned_sizes(self, name: str) -> frozenset[int]:
        sizes = self._sticky_sizes.get(name)
        if sizes is None:
            spec = self._sticky_spec(name)
            if spec is None:
                sizes = frozenset()
            else:
                top = (self.device.spec.max_threads_per_block
                       if self.device is not None else 1024)
                depth = spec.count if spec.count else 1
                sizes = frozenset(top >> k for k in range(depth)
                                  if top >> k >= 1)
            self._sticky_sizes[name] = sizes
        return sizes

    def pre_launch(self, name: str, block_size: int) -> None:
        """Gate one kernel launch; called before the cost model.

        Sticky failures raise :class:`LaunchError` immediately (every
        time — the auto-tuner's halving series is the recovery, and
        :meth:`note_launch_success` closes the event once it settles).
        Transient failures are retried here with exponential backoff
        until a retry draws clean, raising only when the retry budget
        is exhausted.
        """
        if block_size in self._poisoned_sizes(name):
            key = (name, block_size)
            if key not in self._sticky_events:
                self._sticky_events[key] = self.plan.fire(
                    self._sticky_spec(name), name,
                    detail={"block_size": block_size}, consume=False)
            raise LaunchError(
                f"injected sticky launch failure: kernel {name!r} "
                f"cannot launch with block size {block_size}")
        event = self.plan.draw("launch", "transient", name)
        if event is None:
            return
        policy = self.plan.policy
        chain = [event]
        retries = 0
        backoff = 0.0
        while True:
            if retries >= policy.max_retries:
                raise LaunchError(
                    f"injected transient launch failure for {name!r}: "
                    f"{retries} retries exhausted")
            b = policy.backoff_s(retries)
            self.charge_backoff(f"backoff:{name}", b)
            retries += 1
            backoff += b
            again = self.plan.draw("launch", "transient", name)
            if again is None:
                break
            chain.append(again)
        action = (f"relaunched after {retries} retr"
                  f"{'y' if retries == 1 else 'ies'} with backoff")
        self.plan.record_recovery(chain[-1], action,
                                  retries=retries, backoff_s=backoff)
        for ev in chain[:-1]:
            self.plan.record_recovery(ev, action)

    def note_launch_success(self, name: str, block_size: int) -> None:
        """A launch of ``name`` succeeded at ``block_size``: the
        halving series has recovered this kernel's sticky failures."""
        for (kname, _bs), ev in self._sticky_events.items():
            if kname == name and not ev.recovered:
                self.plan.record_recovery(
                    ev, f"auto-tuner settled at block size {block_size}")

    # -- device allocation: forced OOM ---------------------------------

    def pre_alloc(self, nbytes: int) -> None:
        """Maybe raise an injected :class:`DeviceOutOfMemory`.

        The raised exception is tagged ``injected=True`` and carries
        its fault event; the field cache's spill-and-retry loop is the
        recovery (it records against the event when the retried
        allocation succeeds).
        """
        event = self.plan.draw("alloc", "oom", str(int(nbytes)))
        if event is None:
            return
        event.detail["nbytes"] = int(nbytes)
        err = DeviceOutOfMemory(
            f"injected allocation failure for {int(nbytes)} bytes")
        err.injected = True
        err.fault_event = event
        raise err

    # -- host<->device transfers: checksum-guarded bit flips -----------

    def guard_h2d(self, addr: int, host: np.ndarray, name: str) -> None:
        """Verify (and if corrupted, repair) an H2D transfer.

        The device copy at ``addr`` was just written from ``host``; a
        fired fault flips one bit of it.  The guard checks the device
        copy's CRC32 against the host payload and retransmits — real
        ``pool.write`` plus modeled h2d time and backoff — until the
        checksums agree.
        """
        event = self.plan.draw("h2d", "bitflip", name)
        if event is None:
            return
        dev = self.device
        raw = np.ascontiguousarray(host).view(np.uint8).reshape(-1)
        nbytes = raw.size
        expected = zlib.crc32(raw.tobytes())
        bit = int(self.plan.rng.integers(nbytes * 8))
        dev.pool.flip_bit(addr, bit)
        event.detail.update({"bytes": nbytes, "bit": bit})
        policy = self.plan.policy
        retries = 0
        backoff = 0.0
        while zlib.crc32(dev.pool.read(addr, nbytes).tobytes()) != expected:
            if retries >= policy.max_retries:
                raise TransferChecksumError(
                    f"h2d transfer {name!r} still corrupt after "
                    f"{retries} retransmissions")
            b = policy.backoff_s(retries)
            self.charge_backoff(f"backoff:{name}", b,
                                stream=dev.runtime.h2d)
            retries += 1
            backoff += b
            dev.pool.write(addr, host)
            t = transfer_time(dev.spec, nbytes)
            dev.stats.bytes_h2d += nbytes
            dev.stats.n_h2d += 1
            dev.stats.modeled_transfer_time_s += t
            dev.clock += t
            dev.runtime.h2d.enqueue(f"retransmit:{name}", t, "h2d",
                                    args={"bytes": nbytes})
            again = self.plan.draw("h2d", "bitflip", name)
            if again is not None:
                rebit = int(self.plan.rng.integers(nbytes * 8))
                dev.pool.flip_bit(addr, rebit)
                again.detail.update({"bytes": nbytes, "bit": rebit})
                self.plan.record_recovery(
                    again, "absorbed into retransmit chain")
        self.plan.record_recovery(
            event, f"checksum mismatch detected; retransmitted "
                   f"({retries}x)", retries=retries, backoff_s=backoff)

    def guard_d2h(self, addr: int, out: np.ndarray, name: str) -> None:
        """Verify (and if corrupted, repair) a D2H transfer.

        ``out`` holds the bytes just read from the device; a fired
        fault flips one bit of it in flight.  The guard re-reads the
        device copy — charging modeled d2h time per retry — until the
        host copy's checksum matches the device copy's.
        """
        event = self.plan.draw("d2h", "bitflip", name)
        if event is None:
            return
        dev = self.device
        flat = out.view(np.uint8).reshape(-1)
        nbytes = flat.size
        expected = zlib.crc32(flat.tobytes())
        bit = int(self.plan.rng.integers(nbytes * 8))
        flat[bit >> 3] ^= np.uint8(1 << (bit & 7))
        event.detail.update({"bytes": nbytes, "bit": bit})
        policy = self.plan.policy
        retries = 0
        backoff = 0.0
        while zlib.crc32(flat.tobytes()) != expected:
            if retries >= policy.max_retries:
                raise TransferChecksumError(
                    f"d2h transfer {name!r} still corrupt after "
                    f"{retries} retransmissions")
            b = policy.backoff_s(retries)
            self.charge_backoff(f"backoff:{name}", b,
                                stream=dev.runtime.d2h)
            retries += 1
            backoff += b
            flat[:] = dev.pool.read(addr, nbytes)
            t = transfer_time(dev.spec, nbytes)
            dev.stats.bytes_d2h += nbytes
            dev.stats.n_d2h += 1
            dev.stats.modeled_transfer_time_s += t
            dev.clock += t
            dev.runtime.d2h.enqueue(f"retransmit:{name}", t, "d2h",
                                    args={"bytes": nbytes})
            again = self.plan.draw("d2h", "bitflip", name)
            if again is not None:
                rebit = int(self.plan.rng.integers(nbytes * 8))
                flat[rebit >> 3] ^= np.uint8(1 << (rebit & 7))
                again.detail.update({"bytes": nbytes, "bit": rebit})
                self.plan.record_recovery(
                    again, "absorbed into retransmit chain")
        self.plan.record_recovery(
            event, f"checksum mismatch detected; re-read device copy "
                   f"({retries}x)", retries=retries, backoff_s=backoff)

    # -- halo exchange: drop / corrupt / timeout -----------------------

    def deliver_halo(self, dst_device, rbuf: int, data: np.ndarray,
                     net, name: str) -> list[tuple[str, str, float]]:
        """Deliver one halo message under the fault plan.

        Writes ``data`` into ``dst_device``'s pool at ``rbuf`` — but a
        fired fault first drops the message (zeros arrive), corrupts
        one bit in flight, or delays completion past the timeout.  The
        CRC32 of the received buffer against the sent payload (or the
        expired timer) triggers checksum-verified retransmission with
        backoff; by return, the receive buffer is intact.

        Data repair happens here; modeled *time* is deferred: the
        return value is the penalty schedule — ``(kind, span_name,
        seconds)`` with kind ``"backoff"``/``"timeout"``/
        ``"retransmit"`` — which the VM charges onto its comm/fault
        lanes *after* the primary halo span (recovery follows the
        failed delivery), via :meth:`charge_penalties`.
        """
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        nbytes = raw.size
        expected = zlib.crc32(raw.tobytes())
        plan = self.plan
        event = None
        kind = None
        for k in ("drop", "corrupt", "timeout"):
            ev = plan.draw("halo", k, name)
            if ev is not None:
                event, kind = ev, k
                break
        if kind is None:
            dst_device.pool.write(rbuf, data)
            return []
        penalties: list[tuple[str, str, float]] = []
        policy = plan.policy
        event.detail["bytes"] = nbytes
        if kind == "drop":
            dst_device.pool.write(rbuf, np.zeros(nbytes, np.uint8))
        elif kind == "corrupt":
            bit = int(plan.rng.integers(nbytes * 8))
            corrupted = raw.copy()
            corrupted[bit >> 3] ^= np.uint8(1 << (bit & 7))
            dst_device.pool.write(rbuf, corrupted)
            event.detail["bit"] = bit
        else:  # timeout: delivered, but the completion never arrives
            dst_device.pool.write(rbuf, data)
            penalties.append(("timeout", f"timeout:{name}",
                              policy.halo_timeout_s))
            event.detail["timeout_s"] = policy.halo_timeout_s
        retries = 0
        backoff = 0.0
        chain = [event]
        # timeout retransmits at least once (the sender must assume
        # loss); drop/corrupt retransmit until the checksum matches
        pending = True
        while pending:
            if retries >= policy.max_retries:
                raise HaloDeliveryError(
                    f"halo message {name!r} undeliverable after "
                    f"{retries} retransmissions")
            b = policy.backoff_s(retries)
            penalties.append(("backoff", f"backoff:{name}", b))
            retries += 1
            backoff += b
            payload = data
            again = None
            for k in ("drop", "corrupt"):
                again = plan.draw("halo", k, name)
                if again is not None:
                    again.detail["bytes"] = nbytes
                    if k == "drop":
                        payload = np.zeros(nbytes, np.uint8)
                    else:
                        bit = int(plan.rng.integers(nbytes * 8))
                        corrupted = raw.copy()
                        corrupted[bit >> 3] ^= np.uint8(1 << (bit & 7))
                        payload = corrupted
                        again.detail["bit"] = bit
                    chain.append(again)
                    break
            dst_device.pool.write(rbuf, payload)
            penalties.append(("retransmit", f"retransmit:{name}",
                              net.message_time(nbytes)))
            got = zlib.crc32(
                dst_device.pool.read(rbuf, nbytes).tobytes())
            pending = got != expected
        action = (f"{kind} detected; retransmitted ({retries}x, "
                  f"checksum verified)")
        plan.record_recovery(chain[-1], action,
                             retries=retries, backoff_s=backoff)
        for ev in chain[:-1]:
            plan.record_recovery(ev, action)
        return penalties

    def charge_penalties(self, runtime: StreamRuntime,
                         penalties: list[tuple[str, str, float]]) -> float:
        """Charge a halo penalty schedule onto ``runtime``'s lanes.

        Backoffs land on the ``fault`` lane fencing the comm stream
        both ways; timeouts and retransmissions extend the comm lane.
        Returns the total seconds charged (extra comm time the VM adds
        to the exchange's accounting).
        """
        total = 0.0
        for kind, span_name, seconds in penalties:
            if kind == "backoff":
                fault = self._fault_stream(runtime)
                fault.wait_event(runtime.comm.record_event())
                fault.enqueue(span_name, seconds, "backoff")
                runtime.comm.wait_event(fault.record_event())
            else:
                runtime.comm.enqueue(
                    span_name, seconds,
                    "fault" if kind == "timeout" else "comm")
            total += seconds
        return total

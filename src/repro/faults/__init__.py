"""Deterministic fault injection and recovery (DESIGN.md §10).

A seeded :class:`FaultPlan` decides — reproducibly — which operations
fail at the runtime's chokepoints (kernel launch, device allocation,
host<->device transfers, halo exchange, the solver iterate), and a
:class:`FaultInjector` applies the paired recovery: bounded retry with
exponential backoff charged as modeled time, checksum-verified
retransmission, spill-and-retry for memory pressure, and solver
restart from the last good iterate.  Configured programmatically or
via ``REPRO_FAULTS=off|plan:<spec>``; ``off`` (the default) is
bitwise identical to a build without this layer.
"""

from .inject import FaultInjector, HaloDeliveryError, TransferChecksumError
from .plan import (
    FaultCounters,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RecoveryPolicy,
    active_plan,
    install_plan,
    parse_plan,
)

__all__ = [
    "FaultCounters",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "HaloDeliveryError",
    "RecoveryPolicy",
    "TransferChecksumError",
    "active_plan",
    "install_plan",
    "parse_plan",
]

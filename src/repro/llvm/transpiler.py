"""PTX -> LLVM IR transpilation (paper Sec. XI, Future Work).

"We are exploring the possibility to interface to a compiler
framework such as LLVM.  This would allow us to target other
architectures as well."  — that exploration became the production
QDP-JIT/LLVM backend; this module implements it for the reproduction:
the kernels generated in our PTX dialect are transpiled into LLVM IR
(SSA form, typed, two-basic-block control flow for the bounds-check
pattern) targeting a *CPU work-item function* — the per-site function
an LLVM-based backend JITs and wraps in a site loop.

The transpiler produces both the textual ``.ll`` module and a
structured instruction list; the CPU "target" executes the structured
IR with the same vectorize-over-work-items strategy as the PTX driver,
so the two backends can be cross-checked numerically — which the test
suite does for every kernel family.

Subset restrictions (checked, with clear errors): single static
assignment per register (our code generators emit SSA already) and
the guarded-forward-branch control flow the generators use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..driver.parser import ParsedKernel, parse_ptx
from ..ptx.isa import Immediate, Instruction, PTXType, Register, Special


class TranspileError(Exception):
    """The PTX program falls outside the transpilable subset."""


_LLVM_TYPE = {
    PTXType.F32: "float",
    PTXType.F64: "double",
    PTXType.S32: "i32",
    PTXType.S64: "i64",
    PTXType.U32: "i32",
    PTXType.U64: "i64",
    PTXType.PRED: "i1",
}

_FLOAT_BIN = {"add": "fadd", "sub": "fsub", "mul": "fmul", "div": "fdiv"}
_INT_BIN = {"add": "add", "sub": "sub", "mul.lo": "mul", "and": "and",
            "or": "or", "xor": "xor", "shl": "shl"}
_CMP_F = {"eq": "oeq", "ne": "one", "lt": "olt", "le": "ole",
          "gt": "ogt", "ge": "oge"}
_CMP_S = {"eq": "eq", "ne": "ne", "lt": "slt", "le": "sle",
          "gt": "sgt", "ge": "sge"}
_CMP_U = {"eq": "eq", "ne": "ne", "lt": "ult", "le": "ule",
          "gt": "ugt", "ge": "uge"}

_INTRINSIC = {"sqrt": "llvm.sqrt", "sin": "llvm.sin", "cos": "llvm.cos",
              "ex2": "llvm.exp2", "lg2": "llvm.log2",
              "abs": "llvm.fabs", "floor": "llvm.floor",
              "ceil": "llvm.ceil", "trunc": "llvm.trunc",
              "round": "llvm.rint"}


@dataclass
class IRValue:
    """An SSA value: LLVM name + type."""

    name: str
    type: PTXType

    @property
    def ltype(self) -> str:
        return _LLVM_TYPE[self.type]


@dataclass
class IRInst:
    """One structured IR instruction (what the CPU target executes)."""

    op: str                      # llvm opcode or pseudo-op
    dest: str | None
    type: PTXType | None
    args: tuple = ()
    text: str = ""               # the rendered .ll line


@dataclass
class IRModule:
    """A transpiled kernel: text + structured form."""

    name: str
    params: list
    instructions: list[IRInst] = field(default_factory=list)
    text: str = ""


class _Namer:
    def __init__(self):
        self.n = 0

    def fresh(self, stem: str = "v") -> str:
        self.n += 1
        return f"%{stem}{self.n}"


def _reg_name(r: Register) -> str:
    return f"%{r.type.reg_prefix[1:]}{r.index}"


class Transpiler:
    """Translates one parsed PTX kernel into an IRModule."""

    def __init__(self, parsed: ParsedKernel):
        self.p = parsed
        self.mod = IRModule(name=parsed.name, params=list(parsed.params))
        self.namer = _Namer()
        self.defined: set[str] = set()
        self.lines: list[str] = []
        self.intrinsics: set[str] = set()

    # -- operand lowering ------------------------------------------------

    def _operand(self, op, itype: PTXType) -> tuple[str, PTXType]:
        if isinstance(op, Register):
            name = _reg_name(op)
            if name not in self.defined:
                raise TranspileError(
                    f"{self.p.name}: use of undefined SSA value {name}")
            return name, op.type
        if isinstance(op, Immediate):
            t = op.type
            if t.is_float:
                # LLVM accepts decimal FP literals; repr round-trips
                return repr(float(op.value)), t
            return str(int(op.value)), t
        if isinstance(op, Special):
            return f"%{op.which}", PTXType.U32
        raise TranspileError(f"bad operand {op!r}")

    def _emit(self, inst: IRInst) -> None:
        self.mod.instructions.append(inst)
        self.lines.append("  " + inst.text)

    def _define(self, name: str) -> None:
        if name in self.defined:
            raise TranspileError(
                f"{self.p.name}: register {name} assigned twice — "
                f"outside the SSA subset the LLVM backend supports")
        self.defined.add(name)

    def _cvt_text(self, dst: str, src: str, frm: PTXType,
                  to: PTXType) -> str:
        lf, lt = _LLVM_TYPE[frm], _LLVM_TYPE[to]
        if frm.is_float and to.is_float:
            op = "fpext" if to.nbytes > frm.nbytes else "fptrunc"
            return f"{dst} = {op} {lf} {src} to {lt}"
        if frm.is_float and to.is_int:
            op = "fptosi" if to.is_signed else "fptoui"
            return f"{dst} = {op} {lf} {src} to {lt}"
        if frm.is_int and to.is_float:
            op = "sitofp" if frm.is_signed else "uitofp"
            return f"{dst} = {op} {lf} {src} to {lt}"
        # int <-> int
        if to.nbytes > frm.nbytes:
            op = "sext" if frm.is_signed else "zext"
            return f"{dst} = {op} {lf} {src} to {lt}"
        if to.nbytes < frm.nbytes:
            return f"{dst} = trunc {lf} {src} to {lt}"
        return f"{dst} = bitcast {lf} {src} to {lt}"

    # -- instruction lowering -------------------------------------------

    def run(self) -> IRModule:
        plist = []
        for p in self.p.params:
            lt = "i8*" if p.is_pointer else _LLVM_TYPE[p.type]
            plist.append(f"{lt} %{p.name}")
        # work-item identifiers come in as parameters on a CPU target
        plist += ["i32 %tid", "i32 %ntid", "i32 %ctaid"]
        headers = [
            f"; transpiled from PTX kernel {self.p.name}",
            f"define void @{self.p.name}({', '.join(plist)}) {{",
            "entry:",
        ]
        for inst in self.p.instructions:
            self._lower(inst)
        self.lines.append("}")
        decls = sorted(
            f"declare {t} @{i}.{s}({t})"
            for i in self.intrinsics
            for t, s in (("double", "f64"), ("float", "f32")))
        self.mod.text = "\n".join(headers + self.lines + [""] + decls) + "\n"
        return self.mod

    def _lower(self, inst: Instruction) -> None:
        op = inst.opcode
        if inst.guard is not None and op != "bra":
            # the generators guard only forward branches; a guarded
            # arithmetic/memory instruction would need per-instruction
            # predication the structured IR does not model
            raise TranspileError(
                f"{self.p.name}: guarded {op!r} — only guarded forward "
                f"branches are in the transpilable subset")
        if op == "label":
            name = inst.label.lstrip("$")
            self._emit(IRInst("label", None, None, (name,),
                              text=f"br label %{name}"))
            self.lines.append(f"{name}:")
            return
        if op == "bra":
            name = inst.label.lstrip("$")
            if inst.guard is None:
                self._emit(IRInst("br", None, None, (name,),
                                  text=f"br label %{name}"))
                return
            g, _ = self._operand(inst.guard, PTXType.PRED)
            cond = g
            if inst.guard_negated:
                cond = self.namer.fresh("not")
                self._emit(IRInst("not", cond, PTXType.PRED,
                                  (g,), text=f"{cond} = xor i1 {g}, true"))
            cont = self.namer.fresh("cont").lstrip("%")
            self._emit(IRInst("condbr", None, None, (cond, name, cont),
                              text=f"br i1 {cond}, label %{name}, "
                                   f"label %{cont}"))
            self.lines.append(f"{cont}:")
            return
        if op == "ret":
            self._emit(IRInst("ret", None, None, (), text="ret void"))
            return
        if op == "ld.param":
            (pref,) = inst.srcs
            dst = _reg_name(inst.dst)
            self._define(dst)
            param = next(q for q in self.p.params if q.name == pref.pname)
            if param.is_pointer:
                text = f"{dst} = ptrtoint i8* %{param.name} to i64"
                self._emit(IRInst("ptrtoint", dst, inst.type,
                                  (f"%{param.name}",), text=text))
            else:
                lt = _LLVM_TYPE[param.type]
                text = (f"{dst} = bitcast {lt} %{param.name} to {lt}"
                        if not param.type.is_float else
                        f"{dst} = fadd {lt} %{param.name}, 0.0")
                self._emit(IRInst("copy", dst, inst.type,
                                  (f"%{param.name}",), text=text))
            return
        if op == "ld.global":
            (addr,) = inst.srcs
            a, _ = self._operand(addr, PTXType.U64)
            dst = _reg_name(inst.dst)
            self._define(dst)
            lt = _LLVM_TYPE[inst.type]
            ptr = self.namer.fresh("p")
            self.lines.append(
                f"  {ptr} = inttoptr i64 {a} to {lt}*")
            self._emit(IRInst("load", dst, inst.type, (a,),
                              text=f"{dst} = load {lt}, {lt}* {ptr}"))
            return
        if op == "st.global":
            addr, val = inst.srcs
            a, _ = self._operand(addr, PTXType.U64)
            v, _ = self._operand(val, inst.type)
            lt = _LLVM_TYPE[inst.type]
            ptr = self.namer.fresh("p")
            self.lines.append(
                f"  {ptr} = inttoptr i64 {a} to {lt}*")
            self._emit(IRInst("store", None, inst.type, (a, v),
                              text=f"store {lt} {v}, {lt}* {ptr}"))
            return
        if op == "mov":
            (src,) = inst.srcs
            s, st = self._operand(src, inst.type)
            dst = _reg_name(inst.dst)
            self._define(dst)
            lt = _LLVM_TYPE[inst.type]
            if inst.type.is_float:
                text = f"{dst} = fadd {lt} {s}, 0.0"
            else:
                text = f"{dst} = add {lt} {s}, 0"
            self._emit(IRInst("copy", dst, inst.type, (s,), text=text))
            return
        if op == "cvt":
            (src,) = inst.srcs
            s, _ = self._operand(src, inst.src_type)
            dst = _reg_name(inst.dst)
            self._define(dst)
            text = self._cvt_text(dst, s, inst.src_type, inst.type)
            self._emit(IRInst("cvt", dst, inst.type,
                              (s, inst.src_type), text=text))
            return
        if op == "setp":
            a, b = inst.srcs
            sa, _ = self._operand(a, inst.type)
            sb, _ = self._operand(b, inst.type)
            dst = _reg_name(inst.dst)
            self._define(dst)
            lt = _LLVM_TYPE[inst.type]
            if inst.type.is_float:
                text = f"{dst} = fcmp {_CMP_F[inst.cmp]} {lt} {sa}, {sb}"
            elif inst.type.is_signed:
                text = f"{dst} = icmp {_CMP_S[inst.cmp]} {lt} {sa}, {sb}"
            else:
                text = f"{dst} = icmp {_CMP_U[inst.cmp]} {lt} {sa}, {sb}"
            self._emit(IRInst("cmp", dst, inst.type,
                              (inst.cmp, sa, sb), text=text))
            return
        if op == "selp":
            a, b, p = inst.srcs
            sa, _ = self._operand(a, inst.type)
            sb, _ = self._operand(b, inst.type)
            sp, _ = self._operand(p, PTXType.PRED)
            dst = _reg_name(inst.dst)
            self._define(dst)
            lt = _LLVM_TYPE[inst.type]
            self._emit(IRInst("select", dst, inst.type, (sp, sa, sb),
                              text=f"{dst} = select i1 {sp}, {lt} {sa}, "
                                   f"{lt} {sb}"))
            return
        if op in ("fma", "mad.lo"):
            a, b, c = (self._operand(s, inst.type)[0] for s in inst.srcs)
            dst = _reg_name(inst.dst)
            self._define(dst)
            lt = _LLVM_TYPE[inst.type]
            if inst.type.is_float:
                self.intrinsics.add("llvm.fma")
                suffix = "f64" if inst.type == PTXType.F64 else "f32"
                text = (f"{dst} = call {lt} @llvm.fma.{suffix}"
                        f"({lt} {a}, {lt} {b}, {lt} {c})")
            else:
                tmp = self.namer.fresh("mad")
                self.lines.append(f"  {tmp} = mul {lt} {a}, {b}")
                text = f"{dst} = add {lt} {tmp}, {c}"
            self._emit(IRInst("fma", dst, inst.type, (a, b, c), text=text))
            return
        # remaining unary / binary arithmetic
        srcs = [self._operand(s, inst.type)[0] for s in inst.srcs]
        dst = _reg_name(inst.dst)
        self._define(dst)
        lt = _LLVM_TYPE[inst.type]
        if len(srcs) == 2:
            if inst.type.is_float and op in _FLOAT_BIN:
                text = f"{dst} = {_FLOAT_BIN[op]} {lt} {srcs[0]}, {srcs[1]}"
            elif inst.type.is_float and op in ("min", "max"):
                intr = "llvm.minnum" if op == "min" else "llvm.maxnum"
                self.intrinsics.add(intr)
                sfx = "f64" if inst.type == PTXType.F64 else "f32"
                text = (f"{dst} = call {lt} @{intr}.{sfx}"
                        f"({lt} {srcs[0]}, {lt} {srcs[1]})")
            elif op in _INT_BIN:
                text = f"{dst} = {_INT_BIN[op]} {lt} {srcs[0]}, {srcs[1]}"
            elif op == "shr":
                o = "ashr" if inst.type.is_signed else "lshr"
                text = f"{dst} = {o} {lt} {srcs[0]}, {srcs[1]}"
            elif op == "div":
                o = "sdiv" if inst.type.is_signed else "udiv"
                text = f"{dst} = {o} {lt} {srcs[0]}, {srcs[1]}"
            elif op == "rem":
                o = "srem" if inst.type.is_signed else "urem"
                text = f"{dst} = {o} {lt} {srcs[0]}, {srcs[1]}"
            else:
                raise TranspileError(f"no LLVM lowering for {op!r}")
            self._emit(IRInst(op, dst, inst.type, tuple(srcs), text=text))
            return
        # unary
        if op == "neg":
            if inst.type.is_float:
                text = f"{dst} = fneg {lt} {srcs[0]}"
            else:
                text = f"{dst} = sub {lt} 0, {srcs[0]}"
        elif op == "not":
            text = f"{dst} = xor {lt} {srcs[0]}, -1"
        elif op in ("rsqrt", "rcp"):
            sfx = "f64" if inst.type == PTXType.F64 else "f32"
            if op == "rsqrt":
                self.intrinsics.add("llvm.sqrt")
                tmp = self.namer.fresh("sq")
                self.lines.append(
                    f"  {tmp} = call {lt} @llvm.sqrt.{sfx}({lt} {srcs[0]})")
                text = f"{dst} = fdiv {lt} 1.0, {tmp}"
            else:
                text = f"{dst} = fdiv {lt} 1.0, {srcs[0]}"
        elif op in _INTRINSIC:
            intr = _INTRINSIC[op]
            self.intrinsics.add(intr)
            sfx = "f64" if inst.type == PTXType.F64 else "f32"
            text = f"{dst} = call {lt} @{intr}.{sfx}({lt} {srcs[0]})"
        else:
            raise TranspileError(f"no LLVM lowering for unary {op!r}")
        self._emit(IRInst(op, dst, inst.type, tuple(srcs), text=text))


def transpile(ptx_text: str) -> IRModule:
    """PTX text -> LLVM IR module (text + structured instructions)."""
    return Transpiler(parse_ptx(ptx_text)).run()

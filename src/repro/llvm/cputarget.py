"""The CPU target for the LLVM backend (paper Sec. XI).

Two execution strategies over the transpiled
:class:`~repro.llvm.transpiler.IRModule`, both vectorized over
work-items (the site loop an LLVM-backed QDP-JIT wraps around the
per-site function):

* :class:`CompiledCPUKernel` — the production path.  The structured IR
  is code-generated into vectorized-NumPy Python source, ``compile()``d
  once, and cached process-wide keyed on the PTX text — the cross-run
  analogue of the per-context module cache.  This is what the ``cpu``
  entry of the backend registry (:mod:`repro.driver.backends`)
  dispatches to.

* :class:`CPUKernel` — the original per-instruction interpreter,
  retained as the comparison baseline: ``benchmarks/bench_cpu.py``
  measures the compiled path's wall-clock speedup against it.

The compiled path is *bitwise identical to the sim backend on every
observable memory effect* — the contract is on loaded/stored values,
not on intermediate registers, which is what makes it fast.  Integer
address arithmetic (exact, modular) is folded symbolically at compile
time into per-kernel linear forms ``gid*a + b`` whose scalar part is
evaluated once per launch in Python-int arithmetic; floating-point
operations are never reassociated or folded (only deduplicated when
operands are identical, which cannot change bits).  See DESIGN.md
"The backend registry and the compiled CPU backend".
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..driver.jitcompiler import _ld, _st
from ..memory.pool import ALIGNMENT
from ..ptx.isa import PTXType
from .transpiler import IRModule, TranspileError, transpile

_DTYPE = {
    PTXType.F32: np.float32,
    PTXType.F64: np.float64,
    PTXType.S32: np.int32,
    PTXType.S64: np.int64,
    PTXType.U32: np.uint32,
    PTXType.U64: np.uint64,
    PTXType.PRED: np.bool_,
}

_DTYPE_NAME = {
    PTXType.F32: "float32",
    PTXType.F64: "float64",
    PTXType.S32: "int32",
    PTXType.S64: "int64",
    PTXType.U32: "uint32",
    PTXType.U64: "uint64",
}

_NP_DTYPE = {
    PTXType.F32: "np.float32",
    PTXType.F64: "np.float64",
    PTXType.S32: "np.int32",
    PTXType.S64: "np.int64",
    PTXType.U32: "np.uint32",
    PTXType.U64: "np.uint64",
}

_SHIFT = {4: 2, 8: 3}

_CMP = {"eq": np.equal, "ne": np.not_equal, "lt": np.less,
        "le": np.less_equal, "gt": np.greater, "ge": np.greater_equal}

_CMP_PY = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
           "gt": ">", "ge": ">="}

_UNARY = {
    "sqrt": np.sqrt, "sin": np.sin, "cos": np.cos, "ex2": np.exp2,
    "lg2": np.log2, "abs": np.abs, "floor": np.floor, "ceil": np.ceil,
    "trunc": np.trunc, "round": np.rint,
    "rsqrt": lambda x: 1.0 / np.sqrt(x), "rcp": lambda x: 1.0 / x,
    "neg": np.negative, "not": np.invert,
}

_UN_PY = {
    "neg": "(-{a})",
    "not": "(~{a})",
    "abs": "np.abs({a})",
    "sqrt": "np.sqrt({a})",
    "rsqrt": "(1.0 / np.sqrt({a}))",
    "rcp": "(1.0 / {a})",
    "sin": "np.sin({a})",
    "cos": "np.cos({a})",
    "ex2": "np.exp2({a})",
    "lg2": "np.log2({a})",
    "floor": "np.floor({a})",
    "ceil": "np.ceil({a})",
    "trunc": "np.trunc({a})",
    "round": "np.rint({a})",
}

_BINARY = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "mul.lo": np.multiply, "div": np.true_divide,
    "min": np.minimum, "max": np.maximum,
    "and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor,
    "shl": np.left_shift, "shr": np.right_shift,
    "rem": np.fmod,
}

_BIN_PY = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "mul.lo": "({a} * {b})",
    "min": "np.minimum({a}, {b})",
    "max": "np.maximum({a}, {b})",
    "and": "({a} & {b})",
    "or": "({a} | {b})",
    "xor": "({a} ^ {b})",
    "shl": "({a} << {b})",
    "shr": "({a} >> {b})",
    "rem": "np.fmod({a}, {b})",
}


class CPUKernel:
    """The per-instruction IR interpreter (the pre-compiled-backend
    execution strategy, kept as the wall-clock comparison baseline)."""

    def __init__(self, ir: IRModule):
        self.ir = ir
        self.name = ir.name
        self.llvm_text = ir.text

    def __call__(self, views, params, grid_dim, block_dim):
        nt = grid_dim * block_dim
        gl = np.arange(nt, dtype=np.uint32)
        env: dict[str, object] = {
            "%tid": gl % np.uint32(block_dim),
            "%ctaid": gl // np.uint32(block_dim),
            "%ntid": np.uint32(block_dim),
        }
        mask = None
        pending: dict[str, object] = {}

        def val(token: str, t: PTXType):
            if isinstance(token, PTXType):
                return token
            if token.startswith("%"):
                return env[token]
            dt = _DTYPE[t]
            if t.is_float:
                return dt(float(token))
            return dt(int(token))

        with np.errstate(all="ignore"):
            for inst in self.ir.instructions:
                op = inst.op
                if op == "label":
                    (name,) = inst.args
                    p = pending.pop(name, None)
                    if p is not None:
                        mask = p if mask is None else (mask | p)
                        if mask is not None and mask.all():
                            mask = None
                    continue
                if op == "br":
                    (name,) = inst.args
                    t = (np.ones(nt, bool) if mask is None else mask)
                    pending[name] = (pending.get(name, False) | t)
                    mask = np.zeros(nt, bool)
                    continue
                if op == "condbr":
                    cond, target, _cont = inst.args
                    c = val(cond, PTXType.PRED)
                    t = c if mask is None else (mask & c)
                    prev = pending.get(target)
                    pending[target] = t if prev is None else (prev | t)
                    mask = (~t) if mask is None else (mask & ~t)
                    if mask.all():
                        mask = None
                    continue
                if op == "ret":
                    mask = np.zeros(nt, bool)
                    continue
                if op == "ptrtoint":
                    (pname,) = inst.args
                    env[_dest(inst)] = np.uint64(params[pname.lstrip("%")])
                    continue
                if op == "copy":
                    (s,) = inst.args
                    src = s.lstrip()
                    if src.startswith("%") and src[1:] in params:
                        v = np.asarray(params[src[1:]]).astype(
                            _DTYPE[inst.type])
                    else:
                        v = val(s, inst.type)
                    env[_dest(inst)] = v
                    continue
                if op == "load":
                    (a,) = inst.args
                    addr = val(a, PTXType.U64)
                    if mask is not None:
                        addr = np.where(mask, addr, np.uint64(ALIGNMENT))
                    view = views[_DTYPE_NAME[inst.type]]
                    env[_dest(inst)] = view[addr >> _SHIFT[
                        inst.type.nbytes]]
                    continue
                if op == "store":
                    a, v = inst.args
                    addr = val(a, PTXType.U64)
                    value = val(v, inst.type)
                    idx = addr >> _SHIFT[inst.type.nbytes]
                    view = views[_DTYPE_NAME[inst.type]]
                    if mask is None:
                        view[idx] = value
                    else:
                        if np.ndim(value) == 0:
                            view[idx[mask]] = value
                        else:
                            view[idx[mask]] = value[mask]
                    continue
                if op == "cvt":
                    s, src_type = inst.args
                    x = val(s, src_type)
                    if inst.type.is_int and src_type.is_float:
                        env[_dest(inst)] = np.trunc(x).astype(
                            _DTYPE[inst.type])
                    else:
                        env[_dest(inst)] = np.asarray(x).astype(
                            _DTYPE[inst.type])
                    continue
                if op == "cmp":
                    cmp, a, b = inst.args
                    env[_dest(inst)] = _CMP[cmp](val(a, inst.type),
                                                 val(b, inst.type))
                    continue
                if op == "select":
                    p, a, b = inst.args
                    env[_dest(inst)] = np.where(val(p, PTXType.PRED),
                                                val(a, inst.type),
                                                val(b, inst.type))
                    continue
                if op == "fma":
                    a, b, c = (val(s, inst.type) for s in inst.args)
                    env[_dest(inst)] = a * b + c
                    continue
                if op in _BINARY:
                    a, b = (val(s, inst.type) for s in inst.args)
                    env[_dest(inst)] = _BINARY[op](a, b)
                    continue
                if op in _UNARY:
                    (a,) = (val(s, inst.type) for s in inst.args)
                    env[_dest(inst)] = _UNARY[op](a)
                    continue
                raise TranspileError(
                    f"CPU target cannot execute IR op {op!r}")


def _dest(inst) -> str:
    return inst.dest


# --- compiled strategy: runtime helpers -----------------------------------

def _gv(view, gb, s, m, ci):
    """Gather through a folded linear index ``gb + s`` (exact clamp:
    inactive lanes read the same safe word the sim backend reads)."""
    idx = gb + s
    if m is not None:
        idx = np.where(m, idx, ci)
    return view[idx]


def _gs(view, s, m, ci):
    """Gather through a per-launch scalar index."""
    if m is None:
        return view[s]
    return view[np.where(m, s, ci)]


def _pv(view, gb, s, val, m):
    """Scatter through a folded linear index (mirrors ``_st``)."""
    idx = gb + s
    if m is None:
        view[idx] = val
    elif np.ndim(val) == 0:
        view[idx[m]] = val
    else:
        view[idx[m]] = val[m]


def _ps(view, s, val, m, ci):
    """Scatter through a per-launch scalar index."""
    if m is None:
        view[s] = val
        return
    idx = np.where(m, s, ci)
    if np.ndim(val) == 0:
        view[idx[m]] = val
    else:
        view[idx[m]] = val[m]


# --- compiled strategy: IR -> vectorized NumPy source ---------------------


class _Lin(NamedTuple):
    """Integer value linear in the global thread id: ``gid*a + b``.

    ``a`` is a compile-time Python int; ``b`` is a Python-int
    expression over hoisted launch parameters (``_i<k>`` locals) and
    literals, evaluated once per launch.  Exact because integer
    arithmetic is modular and generated address chains do not overflow
    (active-lane addresses are valid pool offsets by construction).
    """

    a: int
    b: str


class _VLin(NamedTuple):
    """Integer vector linear in a loaded index vector: ``base*a + b``.

    ``base`` names an int64 vector local (a gather/shift-map table
    read widened once); ``a`` and ``b`` are as in :class:`_Lin`.  This
    is what folds the table-driven address chains of shift and subset
    kernels — the dominant pattern in dslash — down to one add per
    memory access.
    """

    base: str
    a: int
    b: str


class _FImm(NamedTuple):
    tok: str


class _Spec(NamedTuple):
    which: str


def _is_lit(b: str) -> bool:
    try:
        int(b)
        return True
    except ValueError:
        return False


def _badd(b1: str, b2: str) -> str:
    if _is_lit(b1) and _is_lit(b2):
        return str(int(b1) + int(b2))
    if b1 == "0":
        return b2
    if b2 == "0":
        return b1
    return f"({b1} + {b2})"


def _bsub(b1: str, b2: str) -> str:
    if _is_lit(b1) and _is_lit(b2):
        return str(int(b1) - int(b2))
    if b2 == "0":
        return b1
    return f"({b1} - {b2})"


def _bmul(b1: str, b2: str) -> str:
    if _is_lit(b1) and _is_lit(b2):
        return str(int(b1) * int(b2))
    if b1 == "0" or b2 == "0":
        return "0"
    if b1 == "1":
        return b2
    if b2 == "1":
        return b1
    return f"({b1} * {b2})"


class _NumpyCodegen:
    """Code-generates one IRModule into Python source.

    Contract: the generated function leaves device memory bitwise
    identical to the ``sim`` backend's translation of the same PTX.
    Observable effects are loads (which addresses, in which order) and
    stores (which addresses, which values, which active lanes); those
    are reproduced exactly.  Intermediate integer registers are *not*
    materialized — address chains fold into :class:`_Lin` forms and
    the ``>> shift`` word conversion folds through them — and pure
    vector operations with identical operands are emitted once (CSE),
    neither of which can change any loaded or stored bit.  Float
    arithmetic is never folded, reordered or reassociated.
    """

    def __init__(self, ir: IRModule):
        self.ir = ir
        self.body: list[str] = []
        self.consts: dict[str, object] = {}
        self._const_names: dict[tuple, str] = {}
        self.param_names = {p.name for p in ir.params}
        self.int_params = {p.name for p in ir.params if p.type.is_int}
        self.sym: dict[str, object] = {
            "%tid": _Spec("tid"), "%ctaid": _Spec("ctaid"),
            "%ntid": _Spec("ntid"),
        }
        self._n = 0
        self._cse: dict[tuple, str] = {}
        self._iparams: dict[str, str] = {}
        self._scalars: dict[str, str] = {}
        self._views: dict[str, str] = {}
        self.need_G = False
        self.need_gl = False
        self.need_ntid = False
        # the generators' canonical bounds-check shape: one condbr to
        # an EXIT label immediately followed by ret, no other control
        # flow.  Inside it, guarded-off lanes can never store, so their
        # loaded garbage is unobservable and the clamp index is free —
        # one shared np.where(_m, _G, 0) replaces a per-load clamp.
        ops = [i.op for i in ir.instructions]
        self.simple = (
            ops.count("condbr") == 1 and "br" not in ops
            and ops.count("label") == 1 and ops.count("ret") == 1
            and len(ops) >= 2 and ops[-1] == "ret" and ops[-2] == "label"
            and ops.index("label") > ops.index("condbr")
            and ir.instructions[ops.index("label")].args[0]
            == ir.instructions[ops.index("condbr")].args[1])
        self.post_guard = False
        self._gc_emitted = False

    # -- small emission helpers ----------------------------------------

    def emit(self, line: str) -> None:
        self.body.append("    " + line)

    def fresh(self) -> str:
        self._n += 1
        return f"_v{self._n}"

    def _const(self, t: PTXType, tok: str) -> str:
        dt = _DTYPE[t]
        value = dt(float(tok)) if t.is_float else dt(int(tok))
        key = (t, tok)
        name = self._const_names.get(key)
        if name is None:
            name = f"_K{len(self.consts)}"
            self._const_names[key] = name
            self.consts[name] = value
        return name

    def _iparam(self, pname: str) -> str:
        name = self._iparams.get(pname)
        if name is None:
            name = f"_i{len(self._iparams)}"
            self._iparams[pname] = name
        return name

    def _scalar(self, expr: str) -> str:
        """Hoist a per-launch Python-int scalar expression."""
        if _is_lit(expr):
            return expr
        name = self._scalars.get(expr)
        if name is None:
            name = f"_s{len(self._scalars)}"
            self._scalars[expr] = name
        return name

    def _view(self, t: PTXType) -> str:
        dname = _DTYPE_NAME[t]
        name = self._views.get(dname)
        if name is None:
            name = f"_Vw{len(self._views)}"
            self._views[dname] = name
        return name

    # -- symbolic values ------------------------------------------------

    def _key(self, sym) -> tuple:
        if isinstance(sym, str):
            return ("v", sym)
        if isinstance(sym, _Lin):
            return ("l", sym.a, sym.b)
        if isinstance(sym, _VLin):
            return ("vl", sym.base, sym.a, sym.b)
        if isinstance(sym, _FImm):
            return ("f", sym.tok)
        if isinstance(sym, _Spec):
            return ("s", sym.which)
        raise TranspileError(f"{self.ir.name}: bad symbolic value {sym!r}")

    def _sym_of(self, token: str, t: PTXType):
        if token.startswith("%"):
            s = self.sym.get(token)
            if s is None:
                raise TranspileError(
                    f"{self.ir.name}: use of undefined value {token!r}")
            return s
        if t.is_float:
            return _FImm(token)
        return _Lin(0, str(int(token)))

    def _gmul(self, a: int, gbase: str = "_G") -> str:
        """The shared ``gid-vector * a`` product (CSE'd per kernel)."""
        if a == 1:
            return gbase
        key = ("gmul", gbase, a)
        name = self._cse.get(key)
        if name is None:
            name = self.fresh()
            self.emit(f"{name} = {gbase} * {a}")
            self._cse[key] = name
        return name

    def _mat(self, sym, t: PTXType) -> str:
        """Materialize a symbolic value as an expression of type ``t``."""
        if isinstance(sym, str):
            return sym
        if isinstance(sym, _FImm):
            return self._const(t, sym.tok)
        if isinstance(sym, _Spec):
            if sym.which == "ntid":
                self.need_ntid = True
                return "_ntid"
            self.need_gl = True
            return "_" + sym.which
        if isinstance(sym, _Lin):
            a, b = sym
            if a == 0:
                if _is_lit(b):
                    return self._const(t, b)
                key = ("sclnp", t, b)
                name = self._cse.get(key)
                if name is None:
                    name = self.fresh()
                    self.emit(
                        f"{name} = {_NP_DTYPE[t]}({self._scalar(b)})")
                    self._cse[key] = name
                return name
            self.need_G = True
            key = ("linvec", t, a, b)
            name = self._cse.get(key)
            if name is None:
                core = self._gmul(a)
                expr = core if b == "0" else \
                    f"({core} + {self._scalar(b)})"
                if t != PTXType.S64:
                    expr = f"{expr}.astype({_NP_DTYPE[t]})"
                name = self.fresh()
                self.emit(f"{name} = {expr}")
                self._cse[key] = name
            return name
        if isinstance(sym, _VLin):
            base, a, b = sym
            if a == 1 and b == "0" and t == PTXType.S64:
                return base
            key = ("vlvec", t, base, a, b)
            name = self._cse.get(key)
            if name is None:
                core = base if a == 1 else f"({base} * {a})"
                expr = core if b == "0" else \
                    f"({core} + {self._scalar(b)})"
                if t != PTXType.S64:
                    expr = f"{expr}.astype({_NP_DTYPE[t]})"
                name = self.fresh()
                self.emit(f"{name} = {expr}")
                self._cse[key] = name
            return name
        raise TranspileError(f"{self.ir.name}: bad symbolic value {sym!r}")

    # -- integer folding -------------------------------------------------

    def _fold_int(self, op: str, inst) -> bool:
        """Try to fold an integer arithmetic op symbolically; returns
        True when the destination got a :class:`_Lin` binding."""
        if inst.type is None or not inst.type.is_int:
            return False
        syms = [self._sym_of(s, inst.type) for s in inst.args]
        if op == "fma" and all(isinstance(s, _Spec) for s in syms) and \
                tuple(s.which for s in syms) == ("ctaid", "ntid", "tid"):
            # the canonical global-thread-id computation
            self.sym[inst.dest] = _Lin(1, "0")
            return True
        lins = []
        for s in syms:
            if not isinstance(s, (_Lin, _VLin)):
                return False
            lins.append(s)
        out = None
        if op == "add":
            out = self._lin_add(*lins)
        elif op == "sub":
            x, y = lins
            neg = self._lin_neg(y)
            out = self._lin_add(x, neg) if neg is not None else None
        elif op in ("mul", "mul.lo"):
            out = self._lin_mul(*lins)
        elif op == "fma":
            x, y, z = lins
            prod = self._lin_mul(x, y)
            out = self._lin_add(prod, z) if prod is not None else None
        elif op == "shl":
            x, y = lins
            if isinstance(y, _Lin) and y.a == 0 and _is_lit(y.b) \
                    and 0 <= int(y.b) <= 62:
                out = self._lin_mul(x, _Lin(0, str(1 << int(y.b))))
        elif op == "neg":
            out = self._lin_neg(lins[0])
        if out is None:
            return False
        self.sym[inst.dest] = out
        return True

    @staticmethod
    def _lin_add(x, y):
        if isinstance(x, _Lin) and isinstance(y, _Lin):
            return _Lin(x.a + y.a, _badd(x.b, y.b))
        if isinstance(x, _Lin):
            x, y = y, x
        if isinstance(y, _VLin):                  # VLin + VLin
            if x.base != y.base:
                return None
            return _VLin(x.base, x.a + y.a, _badd(x.b, y.b))
        if y.a != 0:
            return None                           # table vec + gid vec
        return _VLin(x.base, x.a, _badd(x.b, y.b))

    @staticmethod
    def _lin_neg(x):
        if isinstance(x, _Lin):
            return _Lin(-x.a, _bsub("0", x.b))
        return _VLin(x.base, -x.a, _bsub("0", x.b))

    @staticmethod
    def _lin_mul(x, y):
        if isinstance(x, _VLin) or isinstance(y, _VLin):
            if isinstance(x, _VLin) and isinstance(y, _VLin):
                return None
            if isinstance(x, _VLin):
                x, y = y, x                  # x: the _Lin side, y: _VLin
            if x.a != 0 or not _is_lit(x.b):
                return None                  # coeff must stay const
            k = int(x.b)
            if k == 0:
                return _Lin(0, "0")
            return _VLin(y.base, y.a * k, _bmul(y.b, str(k)))
        if x.a != 0 and y.a != 0:
            return None                      # gid^2: not linear
        if x.a != 0:
            x, y = y, x                      # x is now the scalar side
        if y.a != 0 and not _is_lit(x.b):
            return None                      # gid coeff must stay const
        scale = int(x.b) if y.a != 0 else 0
        return _Lin(y.a * scale, _bmul(x.b, y.b))

    # -- generation -------------------------------------------------------

    def generate(self) -> str:
        ir = self.ir
        labels = []
        for inst in ir.instructions:
            if inst.op == "label" and inst.args[0] not in labels:
                labels.append(inst.args[0])
            elif inst.op in ("br", "condbr"):
                lbl = inst.args[0 if inst.op == "br" else 1]
                if lbl not in labels:
                    labels.append(lbl)
        for lbl in labels:
            self.body.append(f"    _pend_{lbl} = None")
        self.body.append("    _m = None")
        for inst in ir.instructions:
            self._gen(inst)
        self.body.append("    return None")

        pro = [f"def _cpu_{ir.name}(_V, _P, _gd, _bd):",
               "    _nt = _gd * _bd"]
        if self.need_gl:
            pro += ["    _gl = np.arange(_nt, dtype=np.uint32)",
                    "    _tid = _gl % np.uint32(_bd)",
                    "    _ctaid = _gl // np.uint32(_bd)"]
        if self.need_ntid:
            pro.append("    _ntid = np.uint32(_bd)")
        if self.need_G:
            pro.append("    _G = np.arange(_nt, dtype=np.int64)")
        for dname, var in self._views.items():
            pro.append(f"    {var} = _V[{dname!r}]")
        for pname, var in self._iparams.items():
            pro.append(f"    {var} = int(_P[{pname!r}])")
        for expr, var in self._scalars.items():
            pro.append(f"    {var} = {expr}")
        return "\n".join(pro + self.body) + "\n"

    def _emit_gc(self) -> None:
        """In the canonical bounds-check shape, one shared clamped gid
        vector replaces the per-load inactive-lane clamp: guarded-off
        lanes read the (in-bounds) gid-0 word of each access instead of
        the sim backend's alignment word.  Both are garbage that only
        exists on lanes which can never store, so no observable bit
        differs."""
        if not self._gc_emitted:
            self.need_G = True
            self.emit("_Gc = _G if _m is None else np.where(_m, _G, 0)")
            self._gc_emitted = True

    def _lin_mem(self, addr: _Lin, sh: int):
        """Fold the byte->word shift through a linear address; returns
        ``(gid_base_var, scalar_word_index)`` or None."""
        a, b = addr
        if a <= 0 or a % (1 << sh) != 0:
            return None
        aw = a >> sh
        # scalar word index: fold literal offsets now, defer the rest
        if _is_lit(b):
            s = str(int(b) >> sh)
        else:
            s = self._scalar(f"({b}) >> {sh}")
        if self.simple and self.post_guard:
            self._emit_gc()
            gb = self._gmul(aw, "_Gc")
        else:
            self.need_G = True
            gb = self._gmul(aw)
        return gb, s

    def _vlin_mem(self, addr: _VLin, sh: int):
        """Fold the byte->word shift through a table-driven (vector
        linear) address; returns ``(vector_word_base, scalar_word_index)``
        or None."""
        base, a, b = addr
        if a <= 0 or a % (1 << sh) != 0:
            return None
        aw = a >> sh
        if _is_lit(b):
            s = str(int(b) >> sh)
        else:
            s = self._scalar(f"({b}) >> {sh}")
        if aw == 1:
            gb = base
        else:
            key = ("vmul", base, aw)
            gb = self._cse.get(key)
            if gb is None:
                gb = self.fresh()
                self.emit(f"{gb} = {base} * {aw}")
                self._cse[key] = gb
        return gb, s

    def _gen(self, inst) -> None:
        op = inst.op
        if op == "label":
            (name,) = inst.args
            p = f"_pend_{name}"
            self.emit(f"if {p} is not None:")
            self.emit(f"    _m = {p} if _m is None else (_m | {p})")
            self.emit(f"    {p} = None")
            self.emit("    if _m.all(): _m = None")
            return
        if op == "br":
            (name,) = inst.args
            p = f"_pend_{name}"
            self.emit("_t = np.ones(_nt, bool) if _m is None else _m")
            self.emit(f"{p} = _t if {p} is None else ({p} | _t)")
            self.emit("_m = np.zeros(_nt, bool)")
            return
        if op == "condbr":
            cond, target, _cont = inst.args
            c = self._mat(self._sym_of(cond, PTXType.PRED), PTXType.PRED)
            p = f"_pend_{target}"
            self.emit(f"_t = {c} if _m is None else (_m & {c})")
            self.emit(f"{p} = _t if {p} is None else ({p} | _t)")
            self.emit("_m = (~_t) if _m is None else (_m & ~_t)")
            self.emit("if _m.all(): _m = None")
            self.post_guard = True
            return
        if op == "ret":
            self.emit("_m = np.zeros(_nt, bool)")
            return
        if op == "ptrtoint":
            (pname,) = inst.args
            self.sym[inst.dest] = _Lin(0, self._iparam(pname.lstrip("%")))
            return
        if op == "copy":
            (s,) = inst.args
            if s.startswith("%") and s[1:] in self.param_names:
                pname = s[1:]
                if pname in self.int_params:
                    self.sym[inst.dest] = _Lin(0, self._iparam(pname))
                else:
                    key = ("fparam", inst.type, pname)
                    name = self._cse.get(key)
                    if name is None:
                        name = self.fresh()
                        self.emit(f"{name} = {_NP_DTYPE[inst.type]}"
                                  f"(_P[{pname!r}])")
                        self._cse[key] = name
                    self.sym[inst.dest] = name
            else:
                self.sym[inst.dest] = self._sym_of(s, inst.type)
            return
        if op == "load":
            (a,) = inst.args
            sh = _SHIFT[inst.type.nbytes]
            ci = ALIGNMENT >> sh
            view = self._view(inst.type)
            sym = self._sym_of(a, PTXType.U64)
            dst = self.fresh()
            folded = self._lin_mem(sym, sh) if isinstance(sym, _Lin) \
                and sym.a != 0 else None
            vfolded = self._vlin_mem(sym, sh) if isinstance(sym, _VLin) \
                else None
            if isinstance(sym, _Lin) and sym.a == 0:
                s = self._scalar(f"({sym.b}) >> {sh}") if not _is_lit(sym.b) \
                    else str(int(sym.b) >> sh)
                self.emit(f"{dst} = _gs({view}, {s}, _m, {ci})")
            elif folded is not None:
                gb, s = folded
                if self.simple:
                    self.emit(f"{dst} = {view}[{gb} + {s}]")
                else:
                    self.emit(f"{dst} = _gv({view}, {gb}, {s}, _m, {ci})")
            elif vfolded is not None:
                # table-driven address: the base vector was loaded with
                # the inactive-lane clamp, so its garbage lanes are
                # unbounded — always clamp the final index
                gb, s = vfolded
                self.emit(f"{dst} = _gv({view}, {gb}, {s}, _m, {ci})")
            else:
                addr = self._mat(sym, PTXType.U64)
                self.emit(f"{dst} = _ld({view}, {addr}, {sh}, _m)")
            self.sym[inst.dest] = dst
            return
        if op == "store":
            a, v = inst.args
            sh = _SHIFT[inst.type.nbytes]
            ci = ALIGNMENT >> sh
            view = self._view(inst.type)
            sym = self._sym_of(a, PTXType.U64)
            val = self._mat(self._sym_of(v, inst.type), inst.type)
            folded = self._lin_mem(sym, sh) if isinstance(sym, _Lin) \
                and sym.a != 0 else None
            vfolded = self._vlin_mem(sym, sh) if isinstance(sym, _VLin) \
                else None
            if isinstance(sym, _Lin) and sym.a == 0:
                s = self._scalar(f"({sym.b}) >> {sh}") if not _is_lit(sym.b) \
                    else str(int(sym.b) >> sh)
                self.emit(f"_ps({view}, {s}, {val}, _m, {ci})")
            elif folded is not None:
                gb, s = folded
                self.emit(f"_pv({view}, {gb}, {s}, {val}, _m)")
            elif vfolded is not None:
                gb, s = vfolded
                self.emit(f"_pv({view}, {gb}, {s}, {val}, _m)")
            else:
                addr = self._mat(sym, PTXType.U64)
                self.emit(f"_st({view}, {addr}, {sh}, {val}, _m)")
            return
        if op == "cvt":
            s, src_type = inst.args
            sym = self._sym_of(s, src_type)
            if inst.type.is_int and src_type.is_int:
                # exact under the no-intermediate-overflow property of
                # generated address chains (DESIGN.md "Known deviations")
                if isinstance(sym, _Lin):
                    self.sym[inst.dest] = sym
                    return
                if isinstance(sym, _VLin) and inst.type.nbytes == 8:
                    self.sym[inst.dest] = sym
                    return
                if isinstance(sym, str) and inst.type.nbytes == 8:
                    # widen a loaded index vector once; later address
                    # arithmetic folds onto it (shift/subset tables)
                    key = ("to64", sym)
                    base = self._cse.get(key)
                    if base is None:
                        base = self.fresh()
                        self.emit(f"{base} = np.asarray({sym})"
                                  f".astype(np.int64)")
                        self._cse[key] = base
                    self.sym[inst.dest] = _VLin(base, 1, "0")
                    return
            x = self._mat(sym, src_type)
            key = ("cvt", inst.type, src_type, self._key(sym))
            name = self._cse.get(key)
            if name is None:
                name = self.fresh()
                if inst.type.is_int and src_type.is_float:
                    self.emit(f"{name} = np.trunc({x})"
                              f".astype({_NP_DTYPE[inst.type]})")
                else:
                    self.emit(f"{name} = np.asarray({x})"
                              f".astype({_NP_DTYPE[inst.type]})")
                self._cse[key] = name
            self.sym[inst.dest] = name
            return
        if op == "cmp":
            cmp, a, b = inst.args
            sa, sb = (self._sym_of(x, inst.type) for x in (a, b))
            key = ("cmp", cmp, inst.type, self._key(sa), self._key(sb))
            name = self._cse.get(key)
            if name is None:
                ea = self._mat(sa, inst.type)
                eb = self._mat(sb, inst.type)
                name = self.fresh()
                self.emit(f"{name} = ({ea} {_CMP_PY[cmp]} {eb})")
                self._cse[key] = name
            self.sym[inst.dest] = name
            return
        if op == "select":
            p, a, b = inst.args
            sp = self._sym_of(p, PTXType.PRED)
            sa, sb = (self._sym_of(x, inst.type) for x in (a, b))
            key = ("select", inst.type, self._key(sp), self._key(sa),
                   self._key(sb))
            name = self._cse.get(key)
            if name is None:
                name = self.fresh()
                self.emit(f"{name} = np.where("
                          f"{self._mat(sp, PTXType.PRED)}, "
                          f"{self._mat(sa, inst.type)}, "
                          f"{self._mat(sb, inst.type)})")
                self._cse[key] = name
            self.sym[inst.dest] = name
            return
        if op in ("fma", "add", "sub", "mul", "mul.lo", "shl", "neg"):
            if self._fold_int(op, inst):
                return
        if op == "fma":
            syms = [self._sym_of(s, inst.type) for s in inst.args]
            key = ("fma", inst.type, *map(self._key, syms))
            name = self._cse.get(key)
            if name is None:
                a, b, c = (self._mat(s, inst.type) for s in syms)
                name = self.fresh()
                self.emit(f"{name} = ({a} * {b} + {c})")
                self._cse[key] = name
            self.sym[inst.dest] = name
            return
        if op == "div":
            syms = [self._sym_of(s, inst.type) for s in inst.args]
            key = ("div", inst.type, *map(self._key, syms))
            name = self._cse.get(key)
            if name is None:
                a, b = (self._mat(s, inst.type) for s in syms)
                name = self.fresh()
                if inst.type.is_float:
                    self.emit(f"{name} = ({a} / {b})")
                else:
                    # PTX integer division truncates toward zero (what
                    # the sim backend emits; results must stay bitwise
                    # identical to it, not merely numerically close)
                    self.emit(
                        f"{name} = np.trunc(np.asarray({a}, np.float64)"
                        f" / np.asarray({b}, np.float64))"
                        f".astype({_NP_DTYPE[inst.type]})")
                self._cse[key] = name
            self.sym[inst.dest] = name
            return
        if op in _BIN_PY:
            syms = [self._sym_of(s, inst.type) for s in inst.args]
            key = (op, inst.type, *map(self._key, syms))
            name = self._cse.get(key)
            if name is None:
                a, b = (self._mat(s, inst.type) for s in syms)
                name = self.fresh()
                self.emit(f"{name} = {_BIN_PY[op].format(a=a, b=b)}")
                self._cse[key] = name
            self.sym[inst.dest] = name
            return
        if op in _UN_PY:
            syms = [self._sym_of(s, inst.type) for s in inst.args]
            key = (op, inst.type, self._key(syms[0]))
            name = self._cse.get(key)
            if name is None:
                (a,) = (self._mat(s, inst.type) for s in syms)
                name = self.fresh()
                self.emit(f"{name} = {_UN_PY[op].format(a=a)}")
                self._cse[key] = name
            self.sym[inst.dest] = name
            return
        raise TranspileError(
            f"{self.ir.name}: no NumPy lowering for IR op {op!r}")


def generate_numpy_source(ir: IRModule) -> tuple[str, dict]:
    """IRModule -> (Python source, hoisted-constant namespace)."""
    gen = _NumpyCodegen(ir)
    source = gen.generate()
    return source, gen.consts


@dataclass
class CompiledCPUKernel:
    """A kernel compiled by the CPU backend, ready to launch.

    Same call signature as the driver JIT's
    :class:`~repro.driver.jitcompiler.CompiledKernel` function, so the
    backend registry can swap one for the other per kernel.
    """

    name: str
    func: object
    source: str
    code: object                 # the cached compiled code object
    ir: IRModule
    compile_seconds: float

    @property
    def llvm_text(self) -> str:
        return self.ir.text

    def __call__(self, views, params, grid_dim, block_dim):
        with np.errstate(all="ignore"):
            self.func(views, params, grid_dim, block_dim)


@dataclass
class CodeCacheStats:
    """Counters for the cross-run compiled-kernel cache."""

    hits: int = 0
    misses: int = 0
    total_compile_seconds: float = 0.0

    @property
    def n_kernels(self) -> int:
        return self.misses


#: process-wide compiled-kernel cache keyed on PTX text — shared by
#: every context/kernel-cache in the process ("cross-run"), mirroring
#: the per-context module cache one level up
_KERNEL_CACHE: dict[str, CompiledCPUKernel] = {}
_cache_stats = CodeCacheStats()


def code_cache_stats() -> CodeCacheStats:
    """The live counters of the cross-run compiled-kernel cache."""
    return _cache_stats


def clear_code_cache() -> None:
    """Drop every cached code object and reset the counters (tests)."""
    global _cache_stats
    _KERNEL_CACHE.clear()
    _cache_stats = CodeCacheStats()


def compile_cpu_kernel(ptx_text: str) -> CompiledCPUKernel:
    """PTX text -> compiled CPU kernel, through the cross-run cache.

    Raises :class:`TranspileError` when the program falls outside the
    transpilable subset; the backend registry catches it and falls
    back to the ``sim`` backend per kernel.
    """
    key = hashlib.sha256(ptx_text.encode()).hexdigest()
    kernel = _KERNEL_CACHE.get(key)
    if kernel is not None:
        _cache_stats.hits += 1
        return kernel
    t0 = time.perf_counter()
    ir = transpile(ptx_text)
    source, consts = generate_numpy_source(ir)
    code = compile(source, f"<cpujit:{ir.name}>", "exec")
    namespace = {"np": np, "_ld": _ld, "_st": _st,
                 "_gv": _gv, "_gs": _gs, "_pv": _pv, "_ps": _ps,
                 **consts}
    exec(code, namespace)
    func = namespace[f"_cpu_{ir.name}"]
    elapsed = time.perf_counter() - t0
    kernel = CompiledCPUKernel(name=ir.name, func=func, source=source,
                               code=code, ir=ir, compile_seconds=elapsed)
    _KERNEL_CACHE[key] = kernel
    _cache_stats.misses += 1
    _cache_stats.total_compile_seconds += elapsed
    return kernel


class LLVMBackend:
    """Compile PTX text through the LLVM path (cached).

    Thin facade over :func:`compile_cpu_kernel` kept for the original
    API; returns compiled kernels (the interpreter remains available
    directly as :class:`CPUKernel` for benchmarking).
    """

    def __init__(self):
        self._kernels: dict[str, CompiledCPUKernel] = {}

    def get_or_compile(self, ptx_text: str) -> CompiledCPUKernel:
        key = hashlib.sha256(ptx_text.encode()).hexdigest()
        k = self._kernels.get(key)
        if k is None:
            k = compile_cpu_kernel(ptx_text)
            self._kernels[key] = k
        return k

"""The CPU target for the LLVM backend (paper Sec. XI).

Executes a transpiled :class:`~repro.llvm.transpiler.IRModule` by
interpreting the structured IR, vectorized over work-items — the
site loop an LLVM-backed QDP-JIT wraps around the per-site function.
Numerically cross-checked against the PTX driver for every kernel
family in the tests; this is the "target other architectures" story
made concrete.
"""

from __future__ import annotations

import numpy as np

from ..memory.pool import ALIGNMENT
from ..ptx.isa import PTXType
from .transpiler import IRModule, TranspileError, transpile

_DTYPE = {
    PTXType.F32: np.float32,
    PTXType.F64: np.float64,
    PTXType.S32: np.int32,
    PTXType.S64: np.int64,
    PTXType.U32: np.uint32,
    PTXType.U64: np.uint64,
    PTXType.PRED: np.bool_,
}

_DTYPE_NAME = {
    PTXType.F32: "float32",
    PTXType.F64: "float64",
    PTXType.S32: "int32",
    PTXType.S64: "int64",
    PTXType.U32: "uint32",
    PTXType.U64: "uint64",
}

_SHIFT = {4: 2, 8: 3}

_CMP = {"eq": np.equal, "ne": np.not_equal, "lt": np.less,
        "le": np.less_equal, "gt": np.greater, "ge": np.greater_equal}

_UNARY = {
    "sqrt": np.sqrt, "sin": np.sin, "cos": np.cos, "ex2": np.exp2,
    "lg2": np.log2, "abs": np.abs, "floor": np.floor, "ceil": np.ceil,
    "trunc": np.trunc, "round": np.rint,
    "rsqrt": lambda x: 1.0 / np.sqrt(x), "rcp": lambda x: 1.0 / x,
    "neg": np.negative, "not": np.invert,
}

_BINARY = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "mul.lo": np.multiply, "div": np.true_divide,
    "min": np.minimum, "max": np.maximum,
    "and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor,
    "shl": np.left_shift, "shr": np.right_shift,
    "rem": np.fmod,
}


class CPUKernel:
    """An executable CPU work-item kernel interpreting structured IR."""

    def __init__(self, ir: IRModule):
        self.ir = ir
        self.name = ir.name
        self.llvm_text = ir.text

    def __call__(self, views, params, grid_dim, block_dim):
        nt = grid_dim * block_dim
        gl = np.arange(nt, dtype=np.uint32)
        env: dict[str, object] = {
            "%tid": gl % np.uint32(block_dim),
            "%ctaid": gl // np.uint32(block_dim),
            "%ntid": np.uint32(block_dim),
        }
        mask = None
        pending: dict[str, object] = {}

        def val(token: str, t: PTXType):
            if isinstance(token, PTXType):
                return token
            if token.startswith("%"):
                return env[token]
            dt = _DTYPE[t]
            if t.is_float:
                return dt(float(token))
            return dt(int(token))

        with np.errstate(all="ignore"):
            for inst in self.ir.instructions:
                op = inst.op
                if op == "label":
                    (name,) = inst.args
                    p = pending.pop(name, None)
                    if p is not None:
                        mask = p if mask is None else (mask | p)
                        if mask is not None and mask.all():
                            mask = None
                    continue
                if op == "br":
                    (name,) = inst.args
                    t = (np.ones(nt, bool) if mask is None else mask)
                    pending[name] = (pending.get(name, False) | t)
                    mask = np.zeros(nt, bool)
                    continue
                if op == "condbr":
                    cond, target, _cont = inst.args
                    c = val(cond, PTXType.PRED)
                    t = c if mask is None else (mask & c)
                    prev = pending.get(target)
                    pending[target] = t if prev is None else (prev | t)
                    mask = (~t) if mask is None else (mask & ~t)
                    if mask.all():
                        mask = None
                    continue
                if op == "ret":
                    mask = np.zeros(nt, bool)
                    continue
                if op == "ptrtoint":
                    (pname,) = inst.args
                    env[_dest(inst)] = np.uint64(params[pname.lstrip("%")])
                    continue
                if op == "copy":
                    (s,) = inst.args
                    src = s.lstrip()
                    if src.startswith("%") and src[1:] in params:
                        v = np.asarray(params[src[1:]]).astype(
                            _DTYPE[inst.type])
                    else:
                        v = val(s, inst.type)
                    env[_dest(inst)] = v
                    continue
                if op == "load":
                    (a,) = inst.args
                    addr = val(a, PTXType.U64)
                    if mask is not None:
                        addr = np.where(mask, addr, np.uint64(ALIGNMENT))
                    view = views[_DTYPE_NAME[inst.type]]
                    env[_dest(inst)] = view[addr >> _SHIFT[
                        inst.type.nbytes]]
                    continue
                if op == "store":
                    a, v = inst.args
                    addr = val(a, PTXType.U64)
                    value = val(v, inst.type)
                    idx = addr >> _SHIFT[inst.type.nbytes]
                    view = views[_DTYPE_NAME[inst.type]]
                    if mask is None:
                        view[idx] = value
                    else:
                        if np.ndim(value) == 0:
                            view[idx[mask]] = value
                        else:
                            view[idx[mask]] = value[mask]
                    continue
                if op == "cvt":
                    s, src_type = inst.args
                    x = val(s, src_type)
                    if inst.type.is_int and src_type.is_float:
                        env[_dest(inst)] = np.trunc(x).astype(
                            _DTYPE[inst.type])
                    else:
                        env[_dest(inst)] = np.asarray(x).astype(
                            _DTYPE[inst.type])
                    continue
                if op == "cmp":
                    cmp, a, b = inst.args
                    env[_dest(inst)] = _CMP[cmp](val(a, inst.type),
                                                 val(b, inst.type))
                    continue
                if op == "select":
                    p, a, b = inst.args
                    env[_dest(inst)] = np.where(val(p, PTXType.PRED),
                                                val(a, inst.type),
                                                val(b, inst.type))
                    continue
                if op == "fma":
                    a, b, c = (val(s, inst.type) for s in inst.args)
                    env[_dest(inst)] = a * b + c
                    continue
                if op in _BINARY:
                    a, b = (val(s, inst.type) for s in inst.args)
                    env[_dest(inst)] = _BINARY[op](a, b)
                    continue
                if op in _UNARY:
                    (a,) = (val(s, inst.type) for s in inst.args)
                    env[_dest(inst)] = _UNARY[op](a)
                    continue
                raise TranspileError(
                    f"CPU target cannot execute IR op {op!r}")


def _dest(inst) -> str:
    return inst.dest


class LLVMBackend:
    """Compile PTX text through the LLVM path (cached)."""

    def __init__(self):
        self._kernels: dict[str, CPUKernel] = {}

    def get_or_compile(self, ptx_text: str) -> CPUKernel:
        import hashlib

        key = hashlib.sha256(ptx_text.encode()).hexdigest()
        k = self._kernels.get(key)
        if k is None:
            k = CPUKernel(transpile(ptx_text))
            self._kernels[key] = k
        return k

"""The LLVM backend (paper Sec. XI, Future Work — implemented):
PTX -> LLVM IR transpilation and a compiled CPU work-item target
(the ``cpu`` entry of the backend registry), plus the original
per-instruction interpreter kept as the benchmarking baseline."""

from .cputarget import (
    CompiledCPUKernel,
    CPUKernel,
    LLVMBackend,
    clear_code_cache,
    code_cache_stats,
    compile_cpu_kernel,
    generate_numpy_source,
)
from .transpiler import IRInst, IRModule, TranspileError, Transpiler, transpile

__all__ = [
    "CPUKernel",
    "CompiledCPUKernel",
    "IRInst",
    "IRModule",
    "LLVMBackend",
    "TranspileError",
    "Transpiler",
    "clear_code_cache",
    "code_cache_stats",
    "compile_cpu_kernel",
    "generate_numpy_source",
    "transpile",
]

"""The LLVM backend (paper Sec. XI, Future Work — implemented):
PTX -> LLVM IR transpilation and a CPU work-item target."""

from .cputarget import CPUKernel, LLVMBackend
from .transpiler import IRInst, IRModule, TranspileError, Transpiler, transpile

__all__ = [
    "CPUKernel",
    "IRInst",
    "IRModule",
    "LLVMBackend",
    "TranspileError",
    "Transpiler",
    "transpile",
]

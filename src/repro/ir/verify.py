"""Structural SSA verification.

Three invariants, checked after SSA construction and again after
every optimization pass (a pass that breaks them has a bug, and the
break must surface *there*, not as a bewildering downstream failure
in the unparser or the driver JIT):

1. **Single definition** — every register is written by at most one
   instruction.
2. **Defs dominate uses** — every read is dominated by the write
   (same block and textually later, or in a dominated block).
3. **No dangling operands** — every register read has a definition
   somewhere in the function.

Violations are reported as :class:`~repro.diagnostics.Diagnostic`
records under the pass name ``ssa-structure`` so the PTX verifier can
run the same check as a standard pipeline pass; the strict entry
point :func:`assert_ssa` raises :class:`IRVerificationError` listing
every finding.
"""

from __future__ import annotations

from ..diagnostics import Diagnostic, Severity, errors
from .ssa import SSAFunction, regname

PASS_NAME = "ssa-structure"


class IRVerificationError(Exception):
    """An SSA function failed structural verification.

    Carries the full diagnostics list (``.diagnostics``).
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


def check_ssa(fn: SSAFunction, obj: str = "") -> list[Diagnostic]:
    """Check the SSA structural invariants; return all findings."""
    obj = obj or fn.name
    out: list[Diagnostic] = []

    def err(message: str, pos: int | None = None) -> None:
        location = (fn.instructions[pos].render()
                    if pos is not None and pos < len(fn.instructions) else "")
        out.append(Diagnostic(Severity.ERROR, PASS_NAME, message,
                              obj=obj, location=location))

    # 1. single definition per register
    for key in sorted(fn.extra_defs):
        first = fn.defs[key]
        for pos in fn.extra_defs[key]:
            err(f"register {regname(key)} redefined (first definition "
                f"at instruction {first})", pos)

    # 3. no dangling operands (checked before dominance so a dangling
    # register is reported once, not once per use)
    for key in sorted(fn.uses):
        if key in fn.defs:
            continue
        err(f"use of register {regname(key)} with no definition",
            fn.uses[key][0])

    # 2. defs dominate uses
    dom = fn.cfg.dominators()
    for key in sorted(fn.defs):
        d = fn.defs[key]
        db = fn.pos_block[d]
        for p in fn.uses.get(key, ()):
            pb = fn.pos_block[p]
            if pb not in dom:
                continue   # unreachable block; reported elsewhere
            ok = (d < p) if db == pb else (db in dom[pb])
            if not ok:
                err(f"definition of {regname(key)} does not dominate "
                    f"its use", p)
    return out


def assert_ssa(fn: SSAFunction, obj: str = "") -> None:
    """Raise :class:`IRVerificationError` on any structural violation."""
    diagnostics = check_ssa(fn, obj=obj)
    errs = errors(diagnostics)
    if errs:
        summary = "\n".join(f"{obj or fn.name}: {d.message}" for d in errs)
        raise IRVerificationError(summary, diagnostics)

"""The IR pass pipeline: ``REPRO_IR`` entry point for kernel builds.

:func:`prepare_module` sits between the expression unparser and the
PTX verifier on every kernel build path (eager statements, fused
groups, reduction partials, halo face copies):

``off``
    Return the module untouched — the build is byte-for-byte the
    pre-IR pipeline.
``verify`` (default)
    Build the SSA view and check the structural invariants
    (:mod:`repro.ir.verify`); return the *original* module object, so
    rendered text, resource metadata and byte accounting are bitwise
    identical to ``off``.
``opt``
    Additionally run the optimization passes (GVN, redundant-load
    hoisting, strength reduction, rematerialization, DCE,
    register-pressure sink — see :data:`DEFAULT_PIPELINE`),
    re-verifying the SSA structure after each, then renumber
    registers compactly and rebuild the resource metadata.  Results
    stay bitwise identical (every rewrite is value-preserving); only
    the instruction stream and the register footprint change.
    ``REPRO_IR_PASSES`` (comma list) selects a subset of passes.  A
    final pressure gate keeps the optimized stream only when its
    liveness-based register footprint is no worse than the input's,
    so ``opt`` can never *raise* a kernel's register count.

Per-pass statistics accumulate into an :class:`IRStats` (hung off
``ctx.stats.ir``) and surface in ``repro.lint --json`` schema 5.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field

from ..diagnostics import ir_mode
from ..ptx.builder import register_counts
from ..ptx.isa import Instruction, KernelInfo, PTXType, Register
from ..ptx.liveness import max_live_registers
from ..ptx.module import PTXModule
from .passes import PASSES, _rewrite
from .ssa import SSAFunction, regkey
from .verify import assert_ssa

DEFAULT_PIPELINE = tuple(PASSES)

_warned_pass_values: set[str] = set()


def selected_passes() -> tuple[str, ...]:
    """The pass list, honoring the ``REPRO_IR_PASSES`` selection knob.

    A comma-separated subset of :data:`DEFAULT_PIPELINE`; order is
    always pipeline order regardless of how the list is written.
    Unknown names warn once and are dropped.
    """
    raw = os.environ.get("REPRO_IR_PASSES")
    if raw is None:
        return DEFAULT_PIPELINE
    wanted = {p.strip().lower() for p in raw.split(",") if p.strip()}
    unknown = wanted - set(PASSES)
    if unknown and raw not in _warned_pass_values:
        _warned_pass_values.add(raw)
        warnings.warn(
            f"ignoring unknown REPRO_IR_PASSES entr"
            f"{'ies' if len(unknown) > 1 else 'y'} "
            f"{', '.join(sorted(unknown))}: accepted values are "
            f"{', '.join(PASSES)}", RuntimeWarning, stacklevel=3)
    return tuple(name for name in PASSES if name in wanted)


@dataclass
class IRStats:
    """Counters for the IR layer, accumulated across kernel builds."""

    mode: str = ""                  # last REPRO_IR mode a build saw
    modules_verified: int = 0       # SSA views built and checked
    modules_optimized: int = 0      # modules rewritten under ``opt``
    pressure_reverts: int = 0       # optimized streams the gate refused
    instructions_before: int = 0    # totals over optimized modules
    instructions_after: int = 0
    live_regs_before: int = 0       # liveness-based 32-bit slots
    live_regs_after: int = 0
    #: per-pass counters, e.g. ``{"gvn": {"eliminated": 12, ...}}``
    passes: dict = field(default_factory=dict)

    def record_pass(self, name: str, pass_stats: dict,
                    regs_saved: int) -> None:
        bucket = self.passes.setdefault(name, {})
        for k, v in pass_stats.items():
            bucket[k] = bucket.get(k, 0) + v
        bucket["registers_saved"] = (bucket.get("registers_saved", 0)
                                     + regs_saved)

    @property
    def instructions_eliminated(self) -> int:
        return self.instructions_before - self.instructions_after

    @property
    def live_regs_saved(self) -> int:
        return self.live_regs_before - self.live_regs_after

    def as_json(self) -> dict:
        return {
            "mode": self.mode,
            "modules_verified": self.modules_verified,
            "modules_optimized": self.modules_optimized,
            "pressure_reverts": self.pressure_reverts,
            "instructions_before": self.instructions_before,
            "instructions_after": self.instructions_after,
            "live_regs_before": self.live_regs_before,
            "live_regs_after": self.live_regs_after,
            "passes": {name: dict(counters)
                       for name, counters in self.passes.items()},
        }


def _renumber(instructions: list[Instruction]) -> list[Instruction]:
    """Compact per-type register indices in first-definition order.

    After DCE the surviving registers are sparse in the builder's
    numbering; renumbering keeps the rendered declarations (and the
    parser's register tables) sized to what the kernel actually uses.
    """
    mapping: dict = {}
    counters: dict[PTXType, int] = {}
    for inst in instructions:
        if inst.dst is None:
            continue
        key = regkey(inst.dst)
        if key in mapping:
            continue
        idx = counters.get(inst.dst.type, 0)
        counters[inst.dst.type] = idx + 1
        mapping[key] = Register(type=inst.dst.type, index=idx)
    out = []
    for inst in instructions:
        inst = _rewrite(inst, mapping)
        if inst.dst is not None and regkey(inst.dst) in mapping:
            new_dst = mapping[regkey(inst.dst)]
            if new_dst != inst.dst:
                inst = Instruction(inst.opcode, inst.type, new_dst,
                                   inst.srcs, cmp=inst.cmp,
                                   src_type=inst.src_type,
                                   label=inst.label, guard=inst.guard,
                                   guard_negated=inst.guard_negated)
        out.append(inst)
    return out


def _rebuild_info(old: KernelInfo, instructions: list[Instruction],
                  name: str) -> KernelInfo:
    """Resource metadata for the optimized stream.

    Register declarations are recomputed from the surviving names;
    the flop/byte accounting is carried over *unchanged* — the
    modeled per-site work stays that of the source expression, so the
    performance model is conservative and modeled results do not
    shift under ``opt`` (the register footprint, which the occupancy
    model derives from liveness over the actual stream, does).
    """
    return KernelInfo(
        name=name,
        params=list(old.params),
        n_instructions=len(instructions),
        regs_per_thread=register_counts(instructions),
        flops_per_site=old.flops_per_site,
        bytes_loaded_per_site=old.bytes_loaded_per_site,
        bytes_stored_per_site=old.bytes_stored_per_site,
    )


def prepare_module(module: PTXModule, stats: IRStats | None = None,
                   mode: str | None = None) -> PTXModule:
    """Run the IR layer over a freshly built module (see module doc)."""
    if mode is None:
        mode = ir_mode()
    if stats is not None:
        stats.mode = mode
    if mode == "off":
        return module

    fn = SSAFunction.from_module(module)
    assert_ssa(fn, obj=module.name)
    if stats is not None:
        stats.modules_verified += 1
    if mode != "opt":
        return module

    live_before = max_live_registers(module.instructions)
    instructions = list(module.instructions)
    live = live_before
    for name in selected_passes():
        fn = SSAFunction.from_instructions(module.name, module.info.params,
                                           instructions)
        instructions, pass_stats = PASSES[name](fn)
        fn = SSAFunction.from_instructions(module.name, module.info.params,
                                           instructions)
        assert_ssa(fn, obj=f"{module.name} (after {name})")
        live_after_pass = max_live_registers(instructions)
        if stats is not None:
            stats.record_pass(name, pass_stats, live - live_after_pass)
        live = live_after_pass

    instructions = _renumber(instructions)
    fn = SSAFunction.from_instructions(module.name, module.info.params,
                                       instructions)
    assert_ssa(fn, obj=f"{module.name} (after renumber)")

    # Pressure gate: every pass is individually pressure-bounded, but
    # their composition is guaranteed never to regress a kernel's
    # register footprint here, where it is cheap to check.
    if live > live_before:
        if stats is not None:
            stats.pressure_reverts += 1
        return module

    if stats is not None:
        stats.modules_optimized += 1
        stats.instructions_before += len(module.instructions)
        stats.instructions_after += len(instructions)
        stats.live_regs_before += live_before
        stats.live_regs_after += live
    return PTXModule(info=_rebuild_info(module.info, instructions,
                                        module.name),
                     instructions=instructions)

"""Optimization passes over the SSA IR.

Every pass has the same shape: it takes an :class:`~repro.ir.ssa.SSAFunction`
and returns ``(new_instructions, stats)`` where ``stats`` is a flat
``{counter: int}`` dict.  Passes never mutate the input function; the
pipeline (:mod:`repro.ir.pipeline`) rebuilds the SSA view and re-runs
the structural verifier between passes.

All passes are *value-preserving*: they only remove recomputation of
a value that provably already exists (``gvn``, ``hoist``), rewrite an
integer operation to a bitwise-equal cheaper form (``strength``),
delete instructions whose results are never observed (``dce``), or
reorder pure single-use instructions (``sink``).  Field results are
therefore bitwise identical with the pipeline on or off.

Memory is modeled conservatively: kernel parameters may alias (the
destination pointer is also a source when the destination appears on
the right-hand side), so a ``st.global`` anywhere invalidates *every*
available load, and loads never move relative to stores.
"""

from __future__ import annotations

from ..ptx.isa import Immediate, Instruction, Register, Special
from .ssa import (
    SSAFunction,
    is_removable,
    is_speculative,
    regkey,
    source_registers,
)

#: Binary opcodes for which operand order does not matter.
COMMUTATIVE = frozenset({"add", "mul", "mul.lo", "mul.wide",
                         "min", "max", "and", "or", "xor"})
#: Three-operand multiply-adds: the first two operands commute.
MULADD = frozenset({"fma", "mad.lo"})


def _rewrite(inst: Instruction, repl: dict) -> Instruction:
    """Apply the register replacement map to one instruction."""
    if not repl:
        return inst
    changed = False
    srcs = []
    for op in inst.srcs:
        if isinstance(op, Register) and regkey(op) in repl:
            srcs.append(repl[regkey(op)])
            changed = True
        else:
            srcs.append(op)
    guard = inst.guard
    if guard is not None and regkey(guard) in repl:
        guard = repl[regkey(guard)]
        changed = True
    if not changed:
        return inst
    return Instruction(inst.opcode, inst.type, inst.dst, tuple(srcs),
                       cmp=inst.cmp, src_type=inst.src_type,
                       label=inst.label, guard=guard,
                       guard_negated=inst.guard_negated)


# --- global value numbering ------------------------------------------------

def _operand_key(op, numbers: dict):
    if isinstance(op, Register):
        key = regkey(op)
        return ("v", numbers.get(key, key))
    if isinstance(op, Immediate):
        v = op.value
        return ("i", op.type.value,
                float(v) if op.type.is_float else int(v))
    if isinstance(op, Special):
        return ("s", op.which)
    # _ParamRef (ld.param): identified by the parameter name
    return ("p", getattr(op, "pname", str(op)))


def _value_key(inst: Instruction, numbers: dict):
    ops = [_operand_key(op, numbers) for op in inst.srcs]
    if inst.opcode in COMMUTATIVE:
        ops.sort()
    elif inst.opcode in MULADD:
        ops[:2] = sorted(ops[:2])
    guard = (None if inst.guard is None
             else (_operand_key(inst.guard, numbers), inst.guard_negated))
    return (inst.opcode,
            inst.type.value if inst.type is not None else None,
            inst.cmp,
            inst.src_type.value if inst.src_type is not None else None,
            guard, tuple(ops))


def gvn(fn: SSAFunction) -> tuple[list[Instruction], dict]:
    """Global value numbering over pure instructions.

    Two instructions computing the same value — same opcode, type and
    *value numbers* of their operands, with commutative operands
    canonically ordered — collapse onto the first, provided its block
    dominates the later occurrence.  This generalizes the fusion
    layer's per-group structural CSE memo: the memo keys on AST shape
    and misses e.g. ``a*b`` vs ``b*a``; value numbering does not.

    ``ld.global`` is excluded (its value depends on memory state; see
    :func:`hoist`), as is everything without a destination.

    Reuse is *pressure-bounded*: a recomputation is collapsed only
    while the earlier value is still live (their live ranges
    overlap).  Merging then removes the duplicate's whole range and
    any extension of the canonical range is covered by it, so the
    register pressure at every program point stays the same or drops.
    Merging across a *gap* — the canonical value already dead when
    the duplicate is defined — is refused: it would keep the value
    live through the gap, and deduplicating e.g. the per-word address
    chains shared by several statements of a fused kernel that way
    keeps dozens of 64-bit offsets live across the whole kernel.
    Trading instructions for registers is the wrong trade here: the
    occupancy model charges the liveness-based register footprint,
    and recomputation is cheap.
    """
    dom = fn.cfg.dominators()
    last_use = {key: max(positions) for key, positions in fn.uses.items()}
    numbers: dict = {}          # regkey -> value number
    table: dict = {}            # value key -> (Register, block, number)
    repl: dict = {}
    next_number = 0
    out: list[Instruction] = []
    stats = {"values_numbered": 0, "eliminated": 0}

    for pos, inst in enumerate(fn.instructions):
        inst = _rewrite(inst, repl)
        if not is_speculative(inst):
            if inst.dst is not None:
                numbers[regkey(inst.dst)] = next_number
                next_number += 1
            out.append(inst)
            continue
        block = fn.pos_block[pos]
        dup_key = regkey(inst.dst)
        key = _value_key(inst, numbers)
        hit = table.get(key)
        if hit is not None:
            canon, canon_block, number = hit
            canon_key = regkey(canon)
            dominates = (canon_block == block
                         or canon_block in dom.get(block, ()))
            still_live = pos <= last_use.get(canon_key, -1)
            if dominates and still_live:
                repl[dup_key] = canon
                numbers[dup_key] = number
                last_use[canon_key] = max(last_use[canon_key],
                                          last_use.get(dup_key, pos))
                stats["eliminated"] += 1
                continue
        numbers[dup_key] = next_number
        table[key] = (inst.dst, block, next_number)
        next_number += 1
        stats["values_numbered"] += 1
        out.append(inst)
    return out, stats


# --- redundant-load hoisting -----------------------------------------------

def hoist(fn: SSAFunction) -> tuple[list[Instruction], dict]:
    """Redundant-load elimination (the load-hoisting pass).

    A ``ld.global`` whose address register, type and guard match an
    earlier load — with the earlier load's block dominating this one
    and **no store in between** — reuses the earlier result instead
    of touching memory again.  With the forward-only control flow the
    generators emit, "in between" in layout order covers every
    execution path, so a single availability table with a clear-on-
    store epoch is sound; kernels with backward edges skip the pass.

    Reuse is pressure-bounded exactly like :func:`gvn`: the earlier
    loaded value is reused only while it is still live, so the pass
    never trades registers for the eliminated loads.
    """
    stats = {"loads_eliminated": 0}
    if fn.has_backward_edge():
        return list(fn.instructions), stats
    dom = fn.cfg.dominators()
    last_use = {key: max(positions) for key, positions in fn.uses.items()}
    avail: dict = {}   # (addr key, type, guard key) -> (Register, block)
    repl: dict = {}
    out: list[Instruction] = []

    for pos, inst in enumerate(fn.instructions):
        inst = _rewrite(inst, repl)
        if inst.opcode == "st.global":
            avail.clear()
            out.append(inst)
            continue
        if inst.opcode == "ld.global":
            (addr,) = inst.srcs
            guard = (None if inst.guard is None
                     else (regkey(inst.guard), inst.guard_negated))
            key = (regkey(addr), inst.type.value, guard)
            block = fn.pos_block[pos]
            dup_key = regkey(inst.dst)
            hit = avail.get(key)
            if hit is not None:
                canon, canon_block = hit
                canon_key = regkey(canon)
                dominates = (canon_block == block
                             or canon_block in dom.get(block, ()))
                still_live = pos <= last_use.get(canon_key, -1)
                if dominates and still_live:
                    repl[dup_key] = canon
                    last_use[canon_key] = max(last_use[canon_key],
                                              last_use.get(dup_key, pos))
                    stats["loads_eliminated"] += 1
                    continue
            avail[key] = (inst.dst, block)
        out.append(inst)
    return out, stats


# --- strength reduction ----------------------------------------------------

def _imm_int(op) -> int | None:
    if isinstance(op, Immediate) and op.type.is_int:
        return int(op.value)
    return None


def strength(fn: SSAFunction) -> tuple[list[Instruction], dict]:
    """Strength reduction on integer index arithmetic.

    Bitwise-equal rewrites only (low-bits integer arithmetic in two's
    complement), so field results cannot change:

    * ``mul.lo r, a, 2^k``  →  ``shl r, a, k``
    * ``mul.lo r, a, 1``    →  copy-propagate ``a``
    * ``mad.lo r, a, 0, c`` →  copy-propagate ``c``
    * ``mad.lo r, a, 1, c`` →  ``add r, a, c``
    * ``add/sub r, a, 0`` / ``shl r, a, 0``  →  copy-propagate ``a``

    Floating point is never touched (identities change rounding and
    signed-zero/NaN behavior).  Copies are recorded in a replacement
    map rather than emitted as ``mov``; the defining instruction goes
    dead and ``dce`` removes it.
    """
    repl: dict = {}
    out: list[Instruction] = []
    stats = {"reduced": 0, "copies_propagated": 0}

    for inst in fn.instructions:
        inst = _rewrite(inst, repl)
        t = inst.type
        if (inst.dst is None or inst.guard is not None
                or t is None or not t.is_int):
            out.append(inst)
            continue
        op = inst.opcode
        if op == "mul.lo":
            a, b = inst.srcs
            if _imm_int(a) is not None and isinstance(b, Register):
                a, b = b, a
            v = _imm_int(b)
            if isinstance(a, Register) and v is not None:
                if v == 1:
                    repl[regkey(inst.dst)] = a
                    stats["copies_propagated"] += 1
                    continue
                if v > 1 and (v & (v - 1)) == 0:
                    out.append(Instruction(
                        "shl", t, inst.dst,
                        (a, Immediate(t, v.bit_length() - 1))))
                    stats["reduced"] += 1
                    continue
        elif op == "mad.lo":
            a, b, c = inst.srcs
            if _imm_int(a) is not None and isinstance(b, Register):
                a, b = b, a
            v = _imm_int(b)
            if isinstance(a, Register) and v is not None:
                if v == 0 and isinstance(c, Register):
                    repl[regkey(inst.dst)] = c
                    stats["copies_propagated"] += 1
                    continue
                if v == 1:
                    out.append(Instruction("add", t, inst.dst, (a, c)))
                    stats["reduced"] += 1
                    continue
        elif op in ("add", "shl", "shr", "or", "xor", "sub"):
            a, b = inst.srcs
            if op == "add" and _imm_int(a) == 0 and isinstance(b, Register):
                a, b = b, a
            if isinstance(a, Register) and _imm_int(b) == 0:
                repl[regkey(inst.dst)] = a
                stats["copies_propagated"] += 1
                continue
        out.append(inst)
    return out, stats


# --- rematerialization -----------------------------------------------------

#: Minimum def-to-use distance (instructions) before a value is worth
#: recomputing at the use, and the maximum distance a clone is reused.
REMAT_DISTANCE = 32
#: Largest pure chain (instructions) cloned for one rematerialization.
REMAT_MAX_CHAIN = 12


def remat(fn: SSAFunction) -> tuple[list[Instruction], dict]:
    """Split long live ranges by recomputing pure values near their uses.

    The dominant register cost in the generated kernels is not
    transient arithmetic but values computed once and consumed much
    later — above all the per-word address chains the builder's CSE
    memo shares across the statements of a fused kernel.  Each such
    address is a 64-bit register held live across hundreds of
    instructions; together they set the liveness peak the occupancy
    model charges.

    This pass is deliberately the *inverse* of :func:`gvn` where GVN's
    trade is wrong: when an operand's definition is more than
    ``REMAT_DISTANCE`` instructions above the use, the pure chain that
    computes it (arithmetic, conversions, ``ld.param`` — never
    ``ld.global``, whose value depends on memory state) is re-emitted
    just before the use into fresh registers.  The original's live
    range contracts to its nearby uses (and :func:`dce` deletes it
    outright when every use was redirected); each clone lives only a
    few instructions.  Chain sources that are still live at the use
    are referenced directly — never extending any original range —
    and a clone is reused by later uses within ``REMAT_DISTANCE`` so
    repeated remats of the same value don't recreate the long range.

    Recomputed integer and float arithmetic over identical inputs is
    bitwise deterministic, so field results are unchanged.

    Registers compared in a ``setp`` are never cloned: the abstract
    interpreter refines their range along the branch edges (the
    ``gid < n`` bounds guard), and a recomputed copy is a fresh name
    that refinement does not reach — the in-bounds proof would fall
    back to the guard-domination heuristic.  Chains reference such
    registers directly while they are live, or stay put.
    """
    instrs = fn.instructions
    def_pos = fn.defs
    last_use = {key: max(ps) for key, ps in fn.uses.items()}
    refined = {regkey(op) for inst in instrs if inst.opcode == "setp"
               for op in inst.srcs if isinstance(op, Register)}

    next_index: dict = {}
    for inst in instrs:
        for r in (*source_registers(inst),
                  *((inst.dst,) if inst.dst is not None else ())):
            t = r.type
            if r.index >= next_index.get(t, 0):
                next_index[t] = r.index + 1

    def fresh(t) -> Register:
        i = next_index.get(t, 0)
        next_index[t] = i + 1
        return Register(t, i)

    def plan(key, pos, acc, planned) -> bool:
        """Topo-order the def positions to clone so ``key`` is
        computable at ``pos``; False if the chain leaves the pure
        fragment or grows past ``REMAT_MAX_CHAIN``."""
        if key in planned:
            return True
        dpos = def_pos.get(key)
        if dpos is None:
            return False
        if last_use.get(key, -1) >= pos:
            return True          # still live: reference it directly
        if key in refined:
            return False
        d = instrs[dpos]
        if not is_speculative(d) or d.guard is not None:
            return False
        for s in source_registers(d):
            if not plan(regkey(s), pos, acc, planned):
                return False
        planned.add(key)
        acc.append(dpos)
        return len(acc) <= REMAT_MAX_CHAIN

    stats = {"rematerialized": 0, "cloned": 0}
    out: list[Instruction] = []
    for blk in fn.cfg.blocks:
        cache: dict = {}     # orig regkey -> (clone Register, clone site)
        for pos in range(blk.start, blk.stop):
            inst = instrs[pos]
            repl: dict = {}
            for r in source_registers(inst):
                key = regkey(r)
                if key in repl:
                    continue
                dpos = def_pos.get(key)
                if (dpos is None or pos - dpos <= REMAT_DISTANCE
                        or key in refined):
                    continue
                hit = cache.get(key)
                if hit is not None and pos - hit[1] <= REMAT_DISTANCE:
                    repl[key] = hit[0]
                    continue
                d = instrs[dpos]
                if not is_speculative(d) or d.guard is not None:
                    continue
                acc: list[int] = []
                planned: set = set()
                ok = all(plan(regkey(s), pos, acc, planned)
                         for s in source_registers(d))
                if not ok or len(acc) >= REMAT_MAX_CHAIN:
                    continue
                mapping: dict = {}
                for cpos in acc + [dpos]:
                    ci = instrs[cpos]
                    nd = fresh(ci.dst.type)
                    out.append(_rewrite(
                        Instruction(ci.opcode, ci.type, nd, ci.srcs,
                                    cmp=ci.cmp, src_type=ci.src_type),
                        mapping))
                    mapping[regkey(ci.dst)] = nd
                    stats["cloned"] += 1
                clone = mapping[regkey(d.dst)]
                cache[key] = (clone, pos)
                repl[key] = clone
                stats["rematerialized"] += 1
            out.append(_rewrite(inst, repl))
    return out, stats


# --- dead-code elimination -------------------------------------------------

def dce(fn: SSAFunction) -> tuple[list[Instruction], dict]:
    """Remove instructions whose results are never observed.

    Transitive: removing an instruction drops the use counts of its
    sources, which may expose them as dead in turn.  Stores, control
    flow and labels are never removed (dead-*store* elimination here
    means stores of dead *values* disappear with their computation
    only when the store itself was already eliminated upstream — a
    store to a kernel output is always observable).
    """
    insts = list(fn.instructions)
    counts: dict = {}
    for inst in insts:
        for r in source_registers(inst):
            counts[regkey(r)] = counts.get(regkey(r), 0) + 1

    removed: set[int] = set()
    changed = True
    while changed:
        changed = False
        for pos in range(len(insts) - 1, -1, -1):
            if pos in removed:
                continue
            inst = insts[pos]
            if not is_removable(inst):
                continue
            if counts.get(regkey(inst.dst), 0):
                continue
            removed.add(pos)
            changed = True
            for r in source_registers(inst):
                counts[regkey(r)] -= 1
    out = [inst for pos, inst in enumerate(insts) if pos not in removed]
    return out, {"removed": len(removed)}


# --- register-pressure sink ------------------------------------------------

def sink(fn: SSAFunction) -> tuple[list[Instruction], dict]:
    """Move pure single-use instructions down to just before their use.

    The builder leaves some values live far from their sole consumer;
    shrinking those live ranges is what actually lowers the
    liveness-based register footprint the occupancy model charges.
    Only speculative instructions (pure arithmetic / ``ld.param``)
    move, only within their basic block, so memory order and control
    flow are untouched.

    A move must not *extend* any live range either: the instruction
    sinks only if every register it reads stays live up to the
    landing point anyway (a later use exists).  Otherwise sinking a
    value would drag all its sources down with it — sinking the
    products of a reduction tree toward the final sum, for example,
    keeps every loaded operand live to the end of the kernel and
    multiplies the pressure it was meant to reduce.
    """
    use_count = fn.use_counts()
    use_pos: dict = {}
    for key, positions in fn.uses.items():
        use_pos[key] = positions[0] if len(positions) == 1 else None
    last_use = {key: max(positions) for key, positions in fn.uses.items()}

    moved = 0
    out: list[Instruction] = []
    for blk in fn.cfg.blocks:
        deferred: dict = {}          # regkey -> Instruction
        block_out: list[Instruction] = []

        def emit(inst: Instruction) -> None:
            for r in source_registers(inst):
                pending = deferred.pop(regkey(r), None)
                if pending is not None:
                    emit(pending)
            block_out.append(inst)

        for pos in range(blk.start, blk.stop):
            inst = fn.instructions[pos]
            key = regkey(inst.dst) if inst.dst is not None else None
            up = use_pos.get(key) if key is not None else None
            movable = (key is not None
                       and is_speculative(inst)
                       and use_count.get(key, 0) == 1
                       and up is not None
                       and blk.start <= up < blk.stop
                       and up > pos
                       and all(last_use.get(regkey(r), -1) >= up
                               for r in source_registers(inst)))
            if movable:
                deferred[key] = inst
            else:
                emit(inst)
        # Anything still deferred has its use inside this block (the
        # movable test guarantees it), so the chain above must have
        # drained; flush defensively in original order regardless.
        for pos in range(blk.start, blk.stop):
            inst = fn.instructions[pos]
            key = regkey(inst.dst) if inst.dst is not None else None
            if key is not None and deferred.get(key) is inst:
                block_out.append(deferred.pop(key))
        original = fn.instructions[blk.start:blk.stop]
        moved += sum(1 for a, b in zip(original, block_out) if a is not b)
        out.extend(block_out)
    return out, {"moved": moved}


#: Ordered registry: pipeline order is the dict order.
PASSES = {
    "gvn": gvn,
    "hoist": hoist,
    "strength": strength,
    "remat": remat,
    "dce": dce,
    "sink": sink,
}

"""SSA mid-level IR between the expression unparser and PTX text.

The code generators (:mod:`repro.core.codegen`) emit SSA by
construction — every value gets a fresh register — but until this
package the framework never *exploited* that: codegen, fusion, absint
and the PTX verifier each re-derived fragments of dataflow reasoning
over the raw instruction list.  ``repro.ir`` reifies the stream as an
SSA function (:mod:`repro.ir.ssa`) with def/use chains and dominance,
checks the SSA structural invariants (:mod:`repro.ir.verify`), and
runs an optimization pass pipeline (:mod:`repro.ir.passes`,
:mod:`repro.ir.pipeline`) before the module is rendered and handed to
the driver JIT — the same mid-end position QDP-JIT gives LLVM.

The pipeline is controlled by the ``REPRO_IR`` knob
(:func:`repro.diagnostics.ir_mode`): ``off`` bypasses the layer
entirely, ``verify`` (default) builds and checks the SSA view but
returns the module untouched, ``opt`` additionally runs the passes.
"""

from .pipeline import DEFAULT_PIPELINE, IRStats, prepare_module
from .ssa import SSAFunction
from .verify import IRVerificationError, check_ssa

__all__ = [
    "DEFAULT_PIPELINE",
    "IRStats",
    "IRVerificationError",
    "SSAFunction",
    "check_ssa",
    "prepare_module",
]

"""The SSA view of one kernel's instruction stream.

An :class:`SSAFunction` wraps the flat :class:`~repro.ptx.isa.Instruction`
list with the derived facts every IR pass needs: the position of each
register's (single) definition, every use position, the control-flow
graph (:mod:`repro.ptx.cfg`) and a position→block map.  Nothing is
re-lowered — the instruction stream *is* the IR; the builder already
allocates a fresh register per value, so the stream is SSA by
construction and this class merely makes that structure queryable
(and checkable, see :mod:`repro.ir.verify`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ptx.cfg import CFG, build_cfg
from ..ptx.isa import Instruction, Param, Register
from ..ptx.module import PTXModule

#: Key identifying a virtual register across the function.
RegKey = tuple[str, int]


def regkey(r: Register) -> RegKey:
    return (r.type.value, r.index)


def regname(key: RegKey) -> str:
    from ..ptx.isa import PTXType

    return f"{PTXType(key[0]).reg_prefix}{key[1]}"


#: Opcodes with an effect beyond writing their destination register.
SIDE_EFFECT_OPS = frozenset({"st.global", "bra", "ret", "label"})


def source_registers(inst: Instruction):
    """Every register the instruction reads (sources and guard)."""
    for op in inst.srcs:
        if isinstance(op, Register):
            yield op
    if inst.guard is not None:
        yield inst.guard


def is_removable(inst: Instruction) -> bool:
    """Whether the instruction may be deleted if its result is unused.

    Loads are removable — the dialect has no volatile accesses, and a
    dead load performs no observable work in the execution model.
    """
    return inst.dst is not None and inst.opcode not in SIDE_EFFECT_OPS


def is_speculative(inst: Instruction) -> bool:
    """Whether the instruction may move relative to memory operations.

    Pure register arithmetic (and ``ld.param``, which reads immutable
    launch state) reorders freely; ``ld.global`` must keep its order
    relative to ``st.global`` because kernel parameters may alias
    (``p_dst`` is also a source when the destination appears on the
    right-hand side).
    """
    return is_removable(inst) and inst.opcode != "ld.global"


@dataclass
class SSAFunction:
    """One kernel as an SSA function over the PTX dialect."""

    name: str
    params: list[Param]
    instructions: list[Instruction]
    cfg: CFG
    #: first (and, in well-formed SSA, only) definition per register
    defs: dict[RegKey, int] = field(default_factory=dict)
    #: further definitions — present only when the SSA invariant is broken
    extra_defs: dict[RegKey, list[int]] = field(default_factory=dict)
    #: every read position per register (guard reads included)
    uses: dict[RegKey, list[int]] = field(default_factory=dict)
    #: block index containing each instruction position
    pos_block: list[int] = field(default_factory=list)

    @classmethod
    def from_instructions(cls, name: str, params: list[Param],
                          instructions: list[Instruction],
                          cfg: CFG | None = None) -> "SSAFunction":
        instructions = list(instructions)
        if cfg is None:
            cfg = build_cfg(instructions)
        fn = cls(name=name, params=list(params),
                 instructions=instructions, cfg=cfg)
        fn.pos_block = [0] * len(instructions)
        for blk in cfg.blocks:
            for pos in range(blk.start, blk.stop):
                fn.pos_block[pos] = blk.index
        for pos, inst in enumerate(instructions):
            for r in source_registers(inst):
                fn.uses.setdefault(regkey(r), []).append(pos)
            if inst.dst is not None:
                key = regkey(inst.dst)
                if key in fn.defs:
                    fn.extra_defs.setdefault(key, []).append(pos)
                else:
                    fn.defs[key] = pos
        return fn

    @classmethod
    def from_module(cls, module: PTXModule) -> "SSAFunction":
        return cls.from_instructions(module.name, module.info.params,
                                     list(module.instructions))

    def to_module(self, info=None) -> PTXModule:
        """Render back to a :class:`PTXModule`.

        With ``info`` (the original module's :class:`KernelInfo`) the
        round trip is bitwise exact; without it a fresh info is derived
        from the stream (register declarations from the names in use,
        no flop/byte accounting — callers that care thread the
        original through, see :mod:`repro.ir.pipeline`).
        """
        if info is None:
            from ..ptx.builder import register_counts
            from ..ptx.isa import KernelInfo

            info = KernelInfo(name=self.name, params=list(self.params),
                              n_instructions=len(self.instructions),
                              regs_per_thread=register_counts(
                                  self.instructions))
        return PTXModule(info=info, instructions=list(self.instructions))

    # -- queries used by the passes -----------------------------------

    def use_counts(self) -> dict[RegKey, int]:
        return {k: len(v) for k, v in self.uses.items()}

    def has_backward_edge(self) -> bool:
        """Any branch to a label at or before the branch itself.

        The generators emit forward-only control flow (a single bounds
        early-exit); passes that reason about execution order in
        layout order bail out when this ever becomes false.
        """
        label_pos = {i.label: pos for pos, i in enumerate(self.instructions)
                     if i.opcode == "label"}
        for pos, inst in enumerate(self.instructions):
            if inst.opcode == "bra":
                target = label_pos.get(inst.label)
                if target is not None and target <= pos:
                    return True
        return False

"""repro: a reproduction of "A Framework for Lattice QCD Calculations
on GPUs" (Winter, Clark, Edwards, Joó — QDP-JIT/PTX).

The package mirrors the paper's layering:

* :mod:`repro.qdp` — the QDP++ data-parallel interface (types,
  fields, shifts, operator infix form);
* :mod:`repro.core` — expression templates, PTX code generation,
  evaluation, reductions;
* :mod:`repro.ptx`, :mod:`repro.driver` — the secondary language and
  the (simulated) driver JIT;
* :mod:`repro.device`, :mod:`repro.memory` — the simulated GPU with
  its bandwidth model, the flat device pool and the LRU field cache;
* :mod:`repro.comm` — the virtual parallel machine with halo exchange
  and comm/compute overlap;
* :mod:`repro.qcd`, :mod:`repro.hmc`, :mod:`repro.quda` — the physics
  layer, the gauge-generation application and the tuned comparator;
* :mod:`repro.perfmodel` — the calibrated models regenerating the
  paper's figures.

Subpackages are imported lazily so that any of them can serve as the
process's entry point without import-order cycles.
"""

from importlib import import_module

__version__ = "1.0.0"

_SUBPACKAGES = ("ptx", "driver", "device", "memory", "qdp", "core",
                "comm", "qcd", "quda", "hmc", "perfmodel", "llvm",
                "typesys")


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        return import_module(f"{__name__}.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_SUBPACKAGES))

"""Compiled-kernel cache.

The driver JIT translates each distinct PTX module exactly once per
process; subsequent requests hit this cache.  The paper measures the
translation cost at 0.05-0.22 s per kernel and ~200 distinct kernels
per HMC trajectory — the cache is what makes the total overhead the
"10-30 seconds, negligible" of Sec. VIII-D.

Every compile (and cache hit) also runs the backend registry's
per-kernel dispatch (:func:`repro.driver.backends.select_backend`):
under ``REPRO_BACKEND=cpu`` the kernel additionally gets a compiled
NumPy callable attached, with graceful per-kernel fallback to ``sim``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .backends import BackendStats, select_backend
from .jitcompiler import CompiledKernel, compile_ptx


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    total_compile_seconds: float = 0.0
    total_modeled_compile_seconds: float = 0.0

    @property
    def n_kernels(self) -> int:
        return self.misses


class KernelCache:
    """Cache of JIT-compiled kernels keyed by PTX text digest."""

    def __init__(self):
        self._kernels: dict[str, CompiledKernel] = {}
        self.stats = CacheStats()
        #: per-backend dispatch accounting (``ctx.stats.backend``)
        self.backend = BackendStats()

    @staticmethod
    def key_for(ptx_text: str) -> str:
        return hashlib.sha256(ptx_text.encode()).hexdigest()

    def get_or_compile(self, ptx_text: str) -> tuple[CompiledKernel, bool]:
        """Return ``(kernel, was_cached)`` for the given PTX text."""
        key = self.key_for(ptx_text)
        kernel = self._kernels.get(key)
        if kernel is not None:
            self.stats.hits += 1
            # re-dispatch on every hit: the knob may have changed
            select_backend(kernel, self.backend)
            return kernel, True
        kernel = compile_ptx(ptx_text)
        kernel.backend_stats = self.backend
        self._kernels[key] = kernel
        self.stats.misses += 1
        self.stats.total_compile_seconds += kernel.compile_seconds
        self.stats.total_modeled_compile_seconds += (
            kernel.modeled_compile_seconds)
        select_backend(kernel, self.backend)
        return kernel, False

    def __len__(self) -> int:
        return len(self._kernels)

    def clear(self) -> None:
        self._kernels.clear()

"""The simulated driver JIT: PTX text -> executable kernel.

This plays the role of the NVIDIA compute-compile driver (part of the
Linux kernel driver) in paper Fig. 2: it accepts PTX assembly text and
produces executable code.  Here "executable" means a generated Python
function in which every PTX instruction becomes one NumPy operation
vectorized over the *thread* axis — the SPMD semantics of the GPU are
preserved exactly (each array lane is one CUDA thread), so results
agree with a real device up to floating-point reassociation in ``fma``
(NumPy does not fuse; see DESIGN.md "Known deviations").

Control flow is compiled with an active-lane mask supporting guarded
instructions and forward branches — sufficient for the bounds-check /
face-select patterns the code generators emit, and verified against
hand-written PTX in the test suite.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..diagnostics import emit_warnings, errors, verify_mode
from ..memory.pool import ALIGNMENT
from ..ptx.isa import Immediate, Instruction, KernelInfo, PTXType, Register, Special
from .parser import ParsedKernel, PTXParseError, parse_ptx


class JITCompileError(Exception):
    """The driver rejected a PTX program."""


_NP_DTYPE = {
    PTXType.F32: "np.float32",
    PTXType.F64: "np.float64",
    PTXType.S32: "np.int32",
    PTXType.S64: "np.int64",
    PTXType.U32: "np.uint32",
    PTXType.U64: "np.uint64",
}

_DTYPE_NAME = {
    PTXType.F32: "float32",
    PTXType.F64: "float64",
    PTXType.S32: "int32",
    PTXType.S64: "int64",
    PTXType.U32: "uint32",
    PTXType.U64: "uint64",
}

_SHIFT = {4: 2, 8: 3}

_CMP_PY = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

_BIN_PY = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "mul.lo": "({a} * {b})",
    "min": "np.minimum({a}, {b})",
    "max": "np.maximum({a}, {b})",
    "and": "({a} & {b})",
    "or": "({a} | {b})",
    "xor": "({a} ^ {b})",
    "shl": "({a} << {b})",
    "shr": "({a} >> {b})",
}

_UN_PY = {
    "neg": "(-{a})",
    "abs": "np.abs({a})",
    "not": "(~{a})",
    "sqrt": "np.sqrt({a})",
    "rsqrt": "(1.0 / np.sqrt({a}))",
    "rcp": "(1.0 / {a})",
    "sin": "np.sin({a})",
    "cos": "np.cos({a})",
    "ex2": "np.exp2({a})",
    "lg2": "np.log2({a})",
    "floor": "np.floor({a})",
    "ceil": "np.ceil({a})",
    "trunc": "np.trunc({a})",
    "round": "np.rint({a})",
}


def _regname(r: Register) -> str:
    return f"R{r.type.reg_prefix[1:]}{r.index}"


# --- runtime helpers (shared by all compiled kernels) ---------------------

def _ld(view, addr, shift, m):
    """Masked global load: inactive lanes read a safe address."""
    if m is not None:
        addr = np.where(m, addr, np.uint64(ALIGNMENT))
    return view[addr >> shift]


def _st(view, addr, shift, val, m):
    """Masked global store."""
    idx = addr >> shift
    if m is None:
        view[idx] = val
    else:
        if np.ndim(val) == 0:
            view[idx[m]] = val
        else:
            view[idx[m]] = val[m]


def _mand(m, p):
    """Combine the active mask with a guard predicate."""
    if m is None:
        return p
    return m & p


@dataclass
class CompiledKernel:
    """A kernel translated by the driver JIT, ready to launch.

    ``func`` is the driver's own (``sim``) translation; the backend
    registry (:mod:`repro.driver.backends`) may attach alternative
    callables per backend name in ``backend_funcs`` and select one via
    ``backend`` — a launch dispatches to the selected backend, falling
    back to ``func`` if none was attached.
    """

    name: str
    func: object
    parsed: ParsedKernel
    ptx_text: str
    python_source: str
    compile_seconds: float       # measured wall-clock of this translation
    modeled_compile_seconds: float  # the modeled NVIDIA-driver JIT cost
    regs_per_thread: int
    #: backend name -> launchable callable ("sim" is ``func``)
    backend_funcs: dict = field(default_factory=dict)
    #: failed backend builds: backend name -> unsupported construct
    backend_errors: dict = field(default_factory=dict)
    #: the backend a launch dispatches to (set by the registry)
    backend: str = "sim"
    #: per-backend launch accounting, shared with the owning cache
    backend_stats: object = None

    def __call__(self, views, params, grid_dim, block_dim):
        func = self.backend_funcs.get(self.backend)
        if func is None:
            func = self.func
        if self.backend_stats is not None:
            self.backend_stats.note_launch(self.backend)
        func(views, params, grid_dim, block_dim)


def modeled_jit_time(n_instructions: int) -> float:
    """Modeled NVIDIA driver JIT translation time for one kernel.

    The paper (Sec. III-D) reports 0.05-0.22 s per compute kernel on
    the JLab 12k nodes — and that band covers everything from tiny
    axpy kernels to multi-thousand-instruction fused operators, so the
    driver's cost must saturate with kernel size (fixed pass overhead
    dominates).  We model a 0.05 s floor approaching a 0.22 s ceiling:
    """
    return 0.05 + 0.17 * (1.0 - math.exp(-n_instructions / 800.0))


def _operand_expr(op, itype: PTXType) -> str:
    if isinstance(op, Register):
        return _regname(op)
    if isinstance(op, Immediate):
        t = op.type if op.type != PTXType.PRED else itype
        return f"{_NP_DTYPE[t]}({op.value!r})"
    if isinstance(op, Special):
        return {"tid": "_tid", "ntid": "_ntid", "ctaid": "_ctaid"}[op.which]
    raise JITCompileError(f"bad operand {op!r}")


class _Translator:
    """Translates one parsed kernel into Python source."""

    def __init__(self, parsed: ParsedKernel):
        self.parsed = parsed
        self.lines: list[str] = []
        self.defined: set[str] = set()
        self.labels = [i.label for i in parsed.instructions
                       if i.opcode == "label"]

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def _effective_mask(self, inst: Instruction) -> str:
        """Emit mask combination for a guarded instruction; returns the
        variable name holding the effective mask."""
        if inst.guard is None:
            return "_m"
        g = _regname(inst.guard)
        g = f"(~{g})" if inst.guard_negated else g
        self.emit(f"_em = _mand(_m, {g})")
        return "_em"

    def _assign(self, inst: Instruction, expr: str) -> None:
        """Assign ``expr`` to the destination, honoring the guard."""
        dst = _regname(inst.dst)
        if inst.guard is None:
            self.emit(f"{dst} = {expr}")
        else:
            em = self._effective_mask(inst)
            if dst in self.defined:
                self.emit(f"{dst} = np.where({em}, {expr}, {dst})")
            else:
                self.emit(f"{dst} = {expr}")
        self.defined.add(dst)

    def translate(self) -> str:
        p = self.parsed
        self.lines = [
            f"def _kernel_{p.name}(_V, _P, _gd, _bd):",
            "    _nt = _gd * _bd",
            "    _gl = np.arange(_nt, dtype=np.uint32)",
            "    _tid = _gl % np.uint32(_bd)",
            "    _ctaid = _gl // np.uint32(_bd)",
            "    _ntid = np.uint32(_bd)",
            "    _m = None",
        ]
        for lbl in self.labels:
            self.emit(f"_pend_{lbl[1:]} = None")
        for inst in p.instructions:
            self._translate_inst(inst)
        self.lines.append(f"    return None")
        return "\n".join(self.lines) + "\n"

    def _translate_inst(self, inst: Instruction) -> None:
        op = inst.opcode
        if op == "label":
            lbl = inst.label[1:]
            self.emit(f"if _pend_{lbl} is not None:")
            self.emit(f"    _m = _pend_{lbl} if _m is None else (_m | _pend_{lbl})")
            self.emit(f"    _pend_{lbl} = None")
            self.emit(f"    if _m is not None and _m.all(): _m = None")
            return
        if op == "bra":
            lbl = inst.label[1:]
            if inst.guard is None:
                self.emit("_t = np.ones(_nt, bool) if _m is None else _m")
            else:
                g = _regname(inst.guard)
                g = f"(~{g})" if inst.guard_negated else g
                self.emit(f"_t = {g} if _m is None else (_m & {g})")
            self.emit(f"_pend_{lbl} = _t if _pend_{lbl} is None "
                      f"else (_pend_{lbl} | _t)")
            self.emit("_m = (~_t) if _m is None else (_m & ~_t)")
            self.emit("if _m.all(): _m = None")
            return
        if op == "ret":
            if inst.guard is None:
                self.emit("_m = np.zeros(_nt, bool)")
            else:
                g = _regname(inst.guard)
                g = f"(~{g})" if inst.guard_negated else g
                self.emit(f"_m = (~{g}) if _m is None else (_m & ~{g})")
            return
        if op == "ld.param":
            (pref,) = inst.srcs
            pname = pref.pname
            if not any(q.name == pname for q in self.parsed.params):
                raise JITCompileError(f"ld.param of unknown param {pname!r}")
            self._assign(inst, f"{_NP_DTYPE[inst.type]}(_P[{pname!r}])")
            return
        if op == "ld.global":
            (addr,) = inst.srcs
            a = _operand_expr(addr, PTXType.U64)
            em = "_m" if inst.guard is None else self._effective_mask(inst)
            sh = _SHIFT[inst.type.nbytes]
            dst = _regname(inst.dst)
            self.emit(f"{dst} = _ld(_V[{_DTYPE_NAME[inst.type]!r}], {a}, "
                      f"{sh}, {em})")
            self.defined.add(dst)
            return
        if op == "st.global":
            addr, val = inst.srcs
            a = _operand_expr(addr, PTXType.U64)
            v = _operand_expr(val, inst.type)
            em = "_m" if inst.guard is None else self._effective_mask(inst)
            sh = _SHIFT[inst.type.nbytes]
            self.emit(f"_st(_V[{_DTYPE_NAME[inst.type]!r}], {a}, {sh}, {v}, {em})")
            return
        if op == "mov":
            (src,) = inst.srcs
            self._assign(inst, _operand_expr(src, inst.type))
            return
        if op == "cvt":
            (src,) = inst.srcs
            s = _operand_expr(src, inst.src_type)
            if inst.type.is_int and inst.src_type.is_float:
                expr = f"np.trunc({s}).astype({_NP_DTYPE[inst.type]})"
            else:
                expr = f"np.asarray({s}).astype({_NP_DTYPE[inst.type]})"
            self._assign(inst, expr)
            return
        if op == "setp":
            a, b = inst.srcs
            ea = _operand_expr(a, inst.type)
            eb = _operand_expr(b, inst.type)
            self._assign(inst, f"({ea} {_CMP_PY[inst.cmp]} {eb})")
            return
        if op == "selp":
            a, b, pred = inst.srcs
            ea = _operand_expr(a, inst.type)
            eb = _operand_expr(b, inst.type)
            ep = _operand_expr(pred, PTXType.PRED)
            self._assign(inst, f"np.where({ep}, {ea}, {eb})")
            return
        if op in ("fma", "mad.lo"):
            a, b, c = (_operand_expr(s, inst.type) for s in inst.srcs)
            self._assign(inst, f"({a} * {b} + {c})")
            return
        if op == "div":
            a, b = (_operand_expr(s, inst.type) for s in inst.srcs)
            if inst.type.is_float:
                self._assign(inst, f"({a} / {b})")
            else:
                # PTX integer division truncates toward zero.
                self._assign(
                    inst,
                    f"np.trunc(np.asarray({a}, np.float64) / "
                    f"np.asarray({b}, np.float64)).astype({_NP_DTYPE[inst.type]})")
            return
        if op == "rem":
            a, b = (_operand_expr(s, inst.type) for s in inst.srcs)
            self._assign(inst, f"np.fmod({a}, {b})")
            return
        if op in _BIN_PY:
            a, b = (_operand_expr(s, inst.type) for s in inst.srcs)
            self._assign(inst, _BIN_PY[op].format(a=a, b=b))
            return
        if op in _UN_PY:
            (a,) = (_operand_expr(s, inst.type) for s in inst.srcs)
            self._assign(inst, _UN_PY[op].format(a=a))
            return
        raise JITCompileError(f"unsupported opcode {op!r}")


def _verify_parsed(parsed: ParsedKernel) -> None:
    """Run the static-analysis pass pipeline on a parsed kernel.

    Every PTX program entering the JIT — generated or hand-written —
    passes through the same verifier the code generators use, so
    malformed kernels fail at compile time with diagnostics instead
    of as downstream evaluator failures.  Strictness follows
    ``REPRO_VERIFY`` (off / warn / error; see :mod:`repro.diagnostics`).
    """
    mode = verify_mode()
    if mode == "off":
        return
    from ..diagnostics import Severity
    from ..ptx.module import PTXModule
    from ..ptx.verifier import run_passes

    info = KernelInfo(name=parsed.name, params=list(parsed.params))
    module = PTXModule(info=info, instructions=list(parsed.instructions))
    diagnostics = run_passes(module)
    errs = errors(diagnostics)
    if mode == "error" and errs:
        emit_warnings([d for d in diagnostics
                       if d.severity < Severity.ERROR], stacklevel=4)
        raise JITCompileError(
            "static verification failed:\n"
            + "\n".join(d.render() for d in errs))
    emit_warnings(diagnostics, stacklevel=4)


def compile_ptx(ptx_text: str) -> CompiledKernel:
    """JIT-compile a PTX module's text into an executable kernel.

    Raises :class:`JITCompileError` on malformed or unsupported input;
    the static-analysis pipeline runs on every program first (gated by
    the ``REPRO_VERIFY`` knob).
    """
    t0 = time.perf_counter()
    try:
        parsed = parse_ptx(ptx_text)
    except PTXParseError as exc:
        raise JITCompileError(f"parse error: {exc}") from exc
    _verify_parsed(parsed)
    tr = _Translator(parsed)
    source = tr.translate()
    namespace = {"np": np, "_ld": _ld, "_st": _st, "_mand": _mand}
    code = compile(source, f"<ptxjit:{parsed.name}>", "exec")
    exec(code, namespace)
    func = namespace[f"_kernel_{parsed.name}"]
    elapsed = time.perf_counter() - t0
    # The real driver JIT performs register allocation; the SSA-style
    # .reg declarations wildly overstate pressure.  Use liveness,
    # capped at the Kepler per-thread hardware maximum of 255 — beyond
    # that a real compiler spills to local memory rather than failing.
    from ..ptx.liveness import max_live_registers

    regs = min(max_live_registers(parsed.instructions), 255)
    return CompiledKernel(
        name=parsed.name,
        func=func,
        parsed=parsed,
        ptx_text=ptx_text,
        python_source=source,
        compile_seconds=elapsed,
        modeled_compile_seconds=modeled_jit_time(len(parsed.instructions)),
        regs_per_thread=max(regs, 8),
    )

"""The simulated NVIDIA driver: PTX parser, JIT compiler, kernel cache."""

from .cache import CacheStats, KernelCache
from .jitcompiler import (
    CompiledKernel,
    JITCompileError,
    compile_ptx,
    modeled_jit_time,
)
from .parser import ParsedKernel, PTXParseError, parse_ptx

__all__ = [
    "CacheStats",
    "CompiledKernel",
    "JITCompileError",
    "KernelCache",
    "ParsedKernel",
    "PTXParseError",
    "compile_ptx",
    "modeled_jit_time",
    "parse_ptx",
]

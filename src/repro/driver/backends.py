"""The execution-backend registry: per-kernel dispatch.

The driver JIT always builds the ``sim`` function for a kernel — the
reference execution semantics everything else is validated against,
and what the verifier/liveness/occupancy analyses are attached to.
The registry decides which *callable* a launch actually runs, per
kernel, from the ``REPRO_BACKEND`` knob (resolved through the shared
``_env_mode`` machinery, so bad values warn once and fall back to the
default like every other ``REPRO_*`` knob):

``sim`` (default)
    The PTX translator of :mod:`repro.driver.jitcompiler`.
``cpu``
    The compiled NumPy backend of :mod:`repro.llvm.cputarget` — PTX
    (post-``REPRO_IR`` pipeline) transpiled to structured IR and
    code-generated into vectorized NumPy, bitwise identical to ``sim``.

Kernels outside a backend's supported subset *fall back to* ``sim``
with a one-time warning naming the kernel and the unsupported
construct — never an error: a run must complete on any knob setting.
Fallbacks, per-backend kernel counts, compile seconds and launch
counts accumulate in :class:`BackendStats`, surfaced as
``ctx.stats.backend`` and in the ``repro.lint --json`` report.

The registry is the permanent seam for additional backends: register
a :class:`Backend` subclass under a new name and the knob accepts it
(``register_backend``); every launch path — eager, fused, reduction
partials, halo faces — routes through here because they all compile
through :class:`~repro.driver.cache.KernelCache`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from ..diagnostics import backend_mode


class BackendBuildError(Exception):
    """A backend cannot build this kernel (triggers sim fallback)."""


@dataclass
class BackendStats:
    """Per-backend accounting for one kernel cache (one context)."""

    #: the knob value the most recent compile resolved to
    mode: str = "sim"
    #: backend name -> kernels built for it
    kernels: dict = field(default_factory=dict)
    #: backend name -> wall-clock seconds spent building its kernels
    compile_seconds: dict = field(default_factory=dict)
    #: backend name -> launches executed through it
    launches: dict = field(default_factory=dict)
    #: kernels that requested a non-sim backend but fell back
    fallbacks: int = 0
    #: kernel name -> the unsupported construct that forced fallback
    fallback_kernels: dict = field(default_factory=dict)

    def note_launch(self, backend: str) -> None:
        self.launches[backend] = self.launches.get(backend, 0) + 1


class Backend:
    """One execution backend: builds a launchable callable per kernel.

    ``build`` receives the driver's
    :class:`~repro.driver.jitcompiler.CompiledKernel` (which carries
    the PTX text and the parsed form) and returns a callable with the
    launch signature ``(views, params, grid_dim, block_dim)``.  Raise
    :class:`BackendBuildError` (or ``TranspileError``) for kernels
    outside the backend's supported subset.
    """

    name = "backend"

    def build(self, kernel):
        raise NotImplementedError


class SimBackend(Backend):
    """The driver JIT's own translation — always available."""

    name = "sim"

    def build(self, kernel):
        return kernel.func


class CpuBackend(Backend):
    """The compiled vectorized-NumPy backend (:mod:`repro.llvm`)."""

    name = "cpu"

    def build(self, kernel):
        from ..llvm.cputarget import compile_cpu_kernel

        return compile_cpu_kernel(kernel.ptx_text)


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Register (or replace) a backend; the knob accepts its name."""
    _REGISTRY[backend.name] = backend


def unregister_backend(name: str) -> None:
    if name in ("sim", "cpu"):
        raise ValueError(f"built-in backend {name!r} cannot be removed")
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> Backend:
    return _REGISTRY[name]


def backend_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


register_backend(SimBackend())
register_backend(CpuBackend())


def resolve_backend_mode() -> str:
    """The active ``REPRO_BACKEND`` value against the live registry."""
    return backend_mode(accepted=backend_names())


#: kernels already warned about, keyed by (kernel name, backend) —
#: fall back once per kernel, not once per launch
_warned_fallbacks: set[tuple[str, str]] = set()


def select_backend(kernel, stats: BackendStats) -> None:
    """Attach the active backend's callable to ``kernel`` (idempotent).

    Called by the kernel cache on every compile *and* cache hit, so a
    mid-process knob change re-dispatches already-compiled kernels.
    Build failures degrade to ``sim`` with a one-time warning and are
    counted in ``stats`` — they never propagate.
    """
    mode = resolve_backend_mode()
    stats.mode = mode
    if "sim" not in kernel.backend_funcs:
        # first selection for this kernel: account the sim build the
        # driver JIT already performed
        kernel.backend_funcs["sim"] = kernel.func
        stats.kernels["sim"] = stats.kernels.get("sim", 0) + 1
        stats.compile_seconds["sim"] = (
            stats.compile_seconds.get("sim", 0.0) + kernel.compile_seconds)
    if kernel.backend == mode:
        return
    if mode in kernel.backend_funcs:
        kernel.backend = mode
        return
    if mode in kernel.backend_errors:
        # already tried and fell back; don't rebuild (or recount) it
        kernel.backend = "sim"
        return
    backend = _REGISTRY[mode]
    from ..llvm.transpiler import TranspileError

    t0 = time.perf_counter()
    try:
        func = backend.build(kernel)
    except (BackendBuildError, TranspileError) as exc:
        kernel.backend_errors[mode] = str(exc)
        stats.fallbacks += 1
        stats.fallback_kernels[kernel.name] = str(exc)
        key = (kernel.name, mode)
        if key not in _warned_fallbacks:
            _warned_fallbacks.add(key)
            warnings.warn(
                f"backend {mode!r} cannot build kernel "
                f"{kernel.name!r} ({exc}); falling back to 'sim' "
                f"for this kernel", RuntimeWarning, stacklevel=4)
        kernel.backend_funcs["sim"] = kernel.func
        kernel.backend = "sim"
        return
    elapsed = time.perf_counter() - t0
    kernel.backend_funcs[mode] = func
    kernel.backend = mode
    stats.kernels[mode] = stats.kernels.get(mode, 0) + 1
    stats.compile_seconds[mode] = (
        stats.compile_seconds.get(mode, 0.0) + elapsed)

"""Parser for the PTX dialect emitted by :mod:`repro.ptx`.

The simulated driver JIT consumes PTX *text*, not the in-memory
builder objects — the same boundary the NVIDIA compute-compile driver
sits behind (paper Fig. 2).  This keeps the code-generation and
execution stages honestly decoupled and lets hand-written PTX run too
(used in tests).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..ptx.isa import Immediate, Instruction, Param, PTXType, Register, Special


class PTXParseError(Exception):
    """Raised on malformed PTX text."""


#: Register-name prefix -> PTX type (longest prefixes first).
_PREFIX_TYPES = [
    ("%fd", PTXType.F64),
    ("%f", PTXType.F32),
    ("%rd", PTXType.S64),
    ("%ru", PTXType.U64),
    ("%r", PTXType.S32),
    ("%u", PTXType.U32),
    ("%p", PTXType.PRED),
]

_SPECIALS = {"%tid.x": "tid", "%ntid.x": "ntid", "%ctaid.x": "ctaid"}

_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*([eE][+-]?\d+)?|\d+[eE][+-]?\d+|inf|nan)$")
_INT_RE = re.compile(r"^[+-]?\d+$")


@dataclass
class ParsedKernel:
    """The result of parsing one PTX module."""

    name: str
    params: list[Param]
    instructions: list[Instruction]
    reg_decls: dict[str, int] = field(default_factory=dict)
    version: str = ""
    target: str = ""


def _parse_operand(tok: str, itype: PTXType | None) -> object:
    tok = tok.strip()
    if tok in _SPECIALS:
        return Special(_SPECIALS[tok])
    if tok.startswith("%"):
        for prefix, t in _PREFIX_TYPES:
            if tok.startswith(prefix) and tok[len(prefix):].isdigit():
                return Register(type=t, index=int(tok[len(prefix):]))
        raise PTXParseError(f"unrecognized register {tok!r}")
    if _INT_RE.match(tok):
        return Immediate(type=itype or PTXType.S64, value=int(tok))
    if _FLOAT_RE.match(tok):
        return Immediate(type=itype or PTXType.F64, value=float(tok))
    raise PTXParseError(f"unrecognized operand {tok!r}")


class _ParamOperand:
    """Operand standing for a kernel parameter in ``ld.param``."""

    def __init__(self, pname: str):
        self.pname = pname

    @property
    def name(self) -> str:
        return self.pname


def _split_mnemonic(mnem: str):
    """Split an instruction mnemonic into (opcode, type, cmp, src_type).

    Handles the dialect's shapes, e.g.::

        add.f32 / mul.lo.s32 / mad.lo.s32 / fma.rn.f64 / setp.lt.s32
        cvt.rn.f32.f64 / cvt.s32.u32 / ld.global.f64 / st.global.f64
        ld.param.u64 / rsqrt.approx.f32 / sqrt.rn.f64 / selp.f32
    """
    parts = mnem.split(".")
    op = parts[0]
    typenames = {t.value for t in PTXType}
    if op in ("ld", "st"):
        # ld.global.f64 / ld.param.u64 / st.global.f64
        space, tname = parts[1], parts[2]
        if tname not in typenames:
            raise PTXParseError(f"bad type in {mnem!r}")
        return f"{op}.{space}", PTXType(tname), None, None
    if op == "cvt":
        # cvt[.rn|.rzi].dsttype.srctype
        rest = [p for p in parts[1:] if p not in ("rn", "rni", "rzi", "sat")]
        if len(rest) != 2:
            raise PTXParseError(f"bad cvt mnemonic {mnem!r}")
        return "cvt", PTXType(rest[0]), None, PTXType(rest[1])
    if op == "setp":
        # setp.lt.s32
        cmp, tname = parts[1], parts[2]
        return "setp", PTXType(tname), cmp, None
    if op in ("mul", "mad") and len(parts) >= 3 and parts[1] in ("lo", "wide"):
        return f"{op}.{parts[1]}", PTXType(parts[2]), None, None
    # generic: opcode[.rn|.approx].type
    rest = [p for p in parts[1:] if p not in ("rn", "approx", "ftz", "sat")]
    if len(rest) != 1 or rest[0] not in typenames:
        raise PTXParseError(f"bad mnemonic {mnem!r}")
    return op, PTXType(rest[0]), None, None


def parse_ptx(text: str) -> ParsedKernel:
    """Parse a PTX module (our dialect) into a :class:`ParsedKernel`."""
    lines = [ln.strip() for ln in text.splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("//")]
    version = target = ""
    name = None
    params: list[Param] = []
    instructions: list[Instruction] = []
    reg_decls: dict[str, int] = {}
    i = 0
    # header
    while i < len(lines) and lines[i].startswith("."):
        ln = lines[i]
        if ln.startswith(".version"):
            version = ln.split()[1]
        elif ln.startswith(".target"):
            target = ln.split()[1]
        elif ln.startswith(".address_size"):
            pass
        elif ln.startswith(".visible"):
            break
        i += 1
    if i >= len(lines) or not lines[i].startswith(".visible .entry"):
        raise PTXParseError("missing .visible .entry")
    m = re.match(r"\.visible \.entry (\w+)\(", lines[i])
    if not m:
        raise PTXParseError(f"bad entry line: {lines[i]!r}")
    name = m.group(1)
    i += 1
    # parameters until ')'
    while i < len(lines) and not lines[i].startswith(")"):
        ln = lines[i].rstrip(",")
        pm = re.match(
            r"\.param \.(\w+)(?: \.ptr \.global)? (\w+)$", ln)
        if not pm:
            raise PTXParseError(f"bad param line: {ln!r}")
        tname, pname = pm.group(1), pm.group(2)
        params.append(Param(name=pname, type=PTXType(tname),
                            is_pointer=".ptr" in ln))
        i += 1
    if i >= len(lines):
        raise PTXParseError("unterminated parameter list")
    i += 1  # skip ')'
    if i < len(lines) and lines[i] == "{":
        i += 1
    # body
    while i < len(lines):
        ln = lines[i]
        i += 1
        if ln == "}":
            break
        if ln.startswith(".reg"):
            rm = re.match(r"\.reg \.(\w+) (%\w+)<(\d+)>;", ln)
            if not rm:
                raise PTXParseError(f"bad .reg line: {ln!r}")
            reg_decls[rm.group(1)] = int(rm.group(3))
            continue
        # label?
        lm = re.match(r"^(\$\w+):$", ln)
        if lm:
            instructions.append(Instruction("label", None, None, (),
                                            label=lm.group(1)))
            continue
        # guard?
        guard = None
        negated = False
        gm = re.match(r"^@(!?)(%p\d+)\s+(.*)$", ln)
        if gm:
            negated = gm.group(1) == "!"
            guard = _parse_operand(gm.group(2), None)
            ln = gm.group(3)
        if not ln.endswith(";"):
            raise PTXParseError(f"missing semicolon: {ln!r}")
        ln = ln[:-1].strip()
        if ln == "ret":
            instructions.append(Instruction("ret", None, None, (),
                                            guard=guard, guard_negated=negated))
            continue
        if ln.startswith("bra"):
            label = ln.split()[1]
            instructions.append(Instruction("bra", None, None, (), label=label,
                                            guard=guard, guard_negated=negated))
            continue
        # general instruction: MNEM op1, op2, ...
        sp = ln.split(None, 1)
        if len(sp) != 2:
            raise PTXParseError(f"bad instruction: {ln!r}")
        mnem, opstr = sp
        opcode, itype, cmp, src_type = _split_mnemonic(mnem)
        toks = [t.strip() for t in opstr.split(",")]
        if opcode == "st.global":
            # st.global.T [addr], val
            am = re.match(r"^\[(.+)\]$", toks[0])
            if not am:
                raise PTXParseError(f"bad store address: {ln!r}")
            addr = _parse_operand(am.group(1), PTXType.U64)
            val = _parse_operand(toks[1], itype)
            instructions.append(Instruction(opcode, itype, None, (addr, val),
                                            guard=guard, guard_negated=negated))
            continue
        # destination first
        dst = _parse_operand(toks[0], itype)
        if not isinstance(dst, Register):
            raise PTXParseError(f"bad destination in {ln!r}")
        if opcode in ("ld.global", "ld.param"):
            am = re.match(r"^\[(.+)\]$", toks[1])
            if not am:
                raise PTXParseError(f"bad load address: {ln!r}")
            inner = am.group(1)
            if opcode == "ld.param":
                src: object = _ParamOperand(inner)
            else:
                src = _parse_operand(inner, PTXType.U64)
            instructions.append(Instruction(opcode, itype, dst, (src,),
                                            guard=guard, guard_negated=negated))
            continue
        srcs = tuple(_parse_operand(t, itype) for t in toks[1:])
        instructions.append(Instruction(opcode, itype, dst, srcs, cmp=cmp,
                                        src_type=src_type,
                                        guard=guard, guard_negated=negated))
    if name is None:
        raise PTXParseError("no kernel found")
    return ParsedKernel(name=name, params=params, instructions=instructions,
                        reg_decls=reg_decls, version=version, target=target)

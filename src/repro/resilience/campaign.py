"""Resilient HMC campaigns: trajectory snapshots feeding recovery.

Long gauge-generation streams (paper Sec. VIII-D; arXiv:1212.0785)
lose whole nodes mid-trajectory.  The recovery unit there is not the
halo exchange but the *trajectory*: work since the last completed
trajectory is gone, and the stream replays it from an in-memory
snapshot.  :func:`run_campaign` drives that loop deterministically —
the seeded ``rank.kill`` site decides which trajectories die (targets
``traj<n>``, so a glob can pin the victim), the
:class:`~repro.hmc.checkpoint.TrajectorySnapshotStore` restores links
and RNG state exactly, and the replayed stream is bitwise identical
to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hmc.checkpoint import TrajectorySnapshotStore


@dataclass
class CampaignResult:
    """Outcome of one resilient HMC campaign."""

    trajectories: int
    kills: int
    replays: int
    lost_work_s: float
    results: list = field(default_factory=list)


def run_campaign(hmc, n_trajectories: int, tau: float,
                 plan=None, store: TrajectorySnapshotStore | None = None,
                 snapshot_keep: int = 2) -> CampaignResult:
    """Run ``n_trajectories`` of ``hmc``, surviving injected kills.

    Each completed trajectory is snapshotted (links + RNG state).  A
    kill drawn for trajectory ``n`` fires *mid-trajectory*: the
    trajectory runs to the point of loss (its device work is honestly
    spent — that is the cost of dying late), the update is discarded,
    links and RNG are restored from the newest snapshot, and the
    trajectory replays.  Because the restore is exact, the surviving
    stream is bitwise identical to a fault-free campaign; the lost
    work shows up only in the modeled clock and the recovery trace.
    """
    if store is None:
        store = TrajectorySnapshotStore(keep=snapshot_keep)
    store.snapshot(hmc.u, hmc.rng, trajectory=-1)
    device = hmc.u[0].context.device
    kills = 0
    replays = 0
    lost = 0.0
    results = []
    n = 0
    while n < n_trajectories:
        event = (plan.draw("rank", "kill", f"traj{n}")
                 if plan is not None else None)
        if event is not None:
            # the doomed attempt: its modeled time is the lost work
            t0 = device.clock
            hmc.trajectory(tau)
            lost_here = device.clock - t0
            lost += lost_here
            restored = store.restore(hmc.u, hmc.rng)
            kills += 1
            replays += 1
            event.detail.update({"trajectory": n,
                                 "restored_from": restored,
                                 "lost_work_s": lost_here})
            plan.record_recovery(
                event, f"restored trajectory {restored} snapshot; "
                       f"replaying trajectory {n}", retries=1,
                backoff_s=plan.policy.backoff_s(0))
            continue
        results.append(hmc.trajectory(tau))
        store.snapshot(hmc.u, hmc.rng, trajectory=n)
        n += 1
    return CampaignResult(trajectories=n_trajectories, kills=kills,
                          replays=replays, lost_work_s=lost,
                          results=results)

"""Rank-level fault tolerance for the comm virtual machine.

The intra-device fault layer (:mod:`repro.faults`) recovers from
transient faults *inside* one rank; at Titan/Blue Waters scale the
dominant failure mode is losing the whole rank.  This package gives
the VM a first-class answer, governed by
``REPRO_RESILIENCE=off|detect|recover``:

detection
    Heartbeat by construction — a killed rank's halo never arrives at
    the next exchange barrier, which is exactly where the
    :class:`ResilienceManager` draws the seeded ``rank`` fault site —
    plus a straggler detector that flags ranks whose modeled device
    clock exceeds a configurable multiple of the median.

recovery (two deterministic policies)
    *Buddy checkpointing*: every exchange barrier refreshes an
    in-memory, CRC32-guarded copy of each rank's
    ``DistributedField`` payloads (held for its +1 neighbor); a dead
    rank is rebuilt on a spare context from its buddy's copy, with
    honest modeled transfer + backoff charged as ``lane="fault"``
    spans.  Results are bitwise identical to the fault-free run.
    *Shrink-and-redistribute*: the processor grid is rebuilt without
    the dead rank (:func:`repro.comm.grid.shrunken_grid`), every
    field re-partitioned from the checkpointed global state, and the
    exchange replayed.  The rank map changes, so reductions reorder —
    shrink runs assert plaquette/residual equality, not bitwise.

The whole schedule is a pure function of ``(seed, workload)``:
same-seed replays produce identical
:meth:`~repro.faults.plan.FaultPlan.trace_signature` strings, and
``off`` is bitwise invisible (no checkpoints, no spans, no monitor).
"""

from .campaign import CampaignResult, run_campaign
from .manager import (
    BuddyRestoreError,
    RankFailureError,
    ResilienceManager,
    ResilienceStats,
)
from .monitor import detect_stragglers

__all__ = [
    "BuddyRestoreError",
    "CampaignResult",
    "run_campaign",
    "RankFailureError",
    "ResilienceManager",
    "ResilienceStats",
    "detect_stragglers",
]

"""Straggler detection over the ranks' modeled device clocks.

A straggler never announces itself — it is visible only as a rank
whose modeled clock runs ahead of its peers while the collective
waits.  The detector is a pure function of the clock vector so the
flagging schedule replays deterministically with the fault plan.
"""

from __future__ import annotations


def detect_stragglers(clocks: list[float],
                      threshold: float) -> list[int]:
    """Ranks whose clock exceeds ``threshold`` x the median clock.

    The median is the collective's natural notion of "where the bulk
    of the machine is"; a homogeneous bulk-synchronous workload keeps
    every rank within modeling noise of it, so only a genuinely hung
    rank crosses a multiple like 4x.  The *lower* median is used so
    that on small (even two-rank) machines a single straggler cannot
    drag the reference point toward itself.  With a zero median
    (nothing has run yet) any positive clock is flagged.  Returns
    flagged rank indices in rank order.
    """
    if not clocks:
        return []
    ordered = sorted(clocks)
    median = ordered[(len(ordered) - 1) // 2]
    if median <= 0.0:
        return [r for r, c in enumerate(clocks) if c > 0.0]
    return [r for r, c in enumerate(clocks) if c > threshold * median]

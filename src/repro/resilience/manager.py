"""The resilience manager: checkpoints, detection, rank recovery.

One :class:`ResilienceManager` is attached to a
:class:`~repro.comm.vm.VirtualMachine` when ``REPRO_RESILIENCE`` (or
the VM's ``resilience=`` argument) is ``detect`` or ``recover``.  The
VM calls :meth:`ResilienceManager.at_exchange` at the top of every
halo exchange — the machine's natural barrier — where the manager

1. refreshes the buddy checkpoint of every registered
   :class:`~repro.comm.vm.DistributedField` (and the persistent
   send/recv buffers) — a consistent cut, CRC32-guarded;
2. draws the seeded ``rank.straggler`` site per rank and runs the
   straggler detector over the ranks' modeled clocks;
3. draws the seeded ``rank.kill`` site per rank; a fired kill either
   raises :class:`RankFailureError` (``detect``) or runs the
   configured recovery policy (``recover``) before the exchange
   proceeds — so the restored rank produces its halo exactly as the
   dead one would have.

Every recovery is recorded on the shared
:class:`~repro.faults.plan.FaultPlan` trace (replay identity via
``trace_signature``) and charged as ``lane="fault"`` spans on the
VM's collective runtime — the makespan honestly includes what the
failure cost.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from ..faults.inject import _crc
from .monitor import detect_stragglers

#: recovery policies a manager can be constructed with
POLICIES = ("buddy", "shrink")


class RankFailureError(RuntimeError):
    """A rank died and the machine is not configured to recover.

    Raised at the exchange barrier where the dead rank's halo failed
    to arrive (``REPRO_RESILIENCE=detect``, or a recovery that cannot
    proceed).  Carries the machine coordinates so the scheduler above
    can decide — and renders as a structured diagnostic, like the
    cache's ``NoValidCopyError``.
    """

    def __init__(self, rank: int, target: str, nranks: int,
                 reason: str = "halo never arrived"):
        self.rank = rank
        self.target = target
        self.nranks = nranks
        self.reason = reason
        super().__init__(
            f"rank {rank}/{nranks} dead at exchange {target!r}: "
            f"{reason}")

    @property
    def diagnostic(self):
        from ..diagnostics import Diagnostic, Severity

        return Diagnostic(
            severity=Severity.ERROR, pass_name="rank-failure",
            message=f"rank {self.rank} of {self.nranks} dead "
                    f"({self.reason})",
            obj=f"rank {self.rank}", location=self.target)


class BuddyRestoreError(RuntimeError):
    """A buddy restore could not produce a valid rank image.

    Raised when the checkpoint store holds no (or a CRC-corrupt) copy
    of a payload the dead rank needs — the resilience analogue of a
    double fault.
    """

    def __init__(self, rank: int, what: str, reason: str):
        self.rank = rank
        self.what = what
        self.reason = reason
        super().__init__(
            f"cannot restore rank {rank}: {what}: {reason}")

    @property
    def diagnostic(self):
        from ..diagnostics import Diagnostic, Severity

        return Diagnostic(
            severity=Severity.ERROR, pass_name="buddy-restore",
            message=self.reason, obj=self.what,
            location=f"rank {self.rank}")


@dataclass
class ResilienceStats:
    """Counters surfaced through ``repro.lint``'s resilience block."""

    kills_injected: int = 0
    stragglers_injected: int = 0
    stragglers_flagged: int = 0
    detections: int = 0
    recoveries_by_policy: dict = field(default_factory=dict)
    recovery_modeled_s: float = 0.0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    restored_payloads: int = 0

    def as_json(self) -> dict:
        return {
            "kills_injected": self.kills_injected,
            "stragglers_injected": self.stragglers_injected,
            "stragglers_flagged": self.stragglers_flagged,
            "detections": self.detections,
            "recoveries_by_policy": dict(self.recoveries_by_policy),
            "recovery_modeled_s": self.recovery_modeled_s,
            "checkpoints": self.checkpoints,
            "checkpoint_bytes": self.checkpoint_bytes,
            "restored_payloads": self.restored_payloads,
        }


class ResilienceManager:
    """Rank fault tolerance for one virtual machine."""

    def __init__(self, vm, mode: str = "recover",
                 policy: str = "buddy"):
        if mode not in ("detect", "recover"):
            raise ValueError(f"bad resilience mode {mode!r}: use "
                             f"'detect' or 'recover' (or no manager)")
        if policy not in POLICIES:
            raise ValueError(f"bad recovery policy {policy!r}: "
                             f"accepted: {', '.join(POLICIES)}")
        self.vm = vm
        self.mode = mode
        self.policy = policy
        self.stats = ResilienceStats()
        #: (field id, rank) -> (payload array copy, crc32)
        self._field_ckpt: dict[tuple[int, int],
                               tuple[np.ndarray, int]] = {}
        #: vm buffer key -> (raw bytes copy, crc32)
        self._buffer_ckpt: dict[tuple, tuple[np.ndarray, int]] = {}
        #: registered fields, weakly, in registration order — the
        #: refresh order must be deterministic for replay identity
        self._fields: list[weakref.ref] = []
        #: callbacks run after a shrink rebuilt the rank map (cached
        #: site partitions etc. must be invalidated)
        self._shrink_hooks: list = []
        #: stragglers already flagged (don't re-flag every barrier)
        self._flagged: set[int] = set()
        #: open straggler events by rank, awaiting detection
        self._open_stragglers: dict = {}

    # -- registration ---------------------------------------------------

    def register(self, dfield) -> None:
        """Track one distributed field for checkpointing/restore."""
        self._fields.append(weakref.ref(dfield))

    def on_shrink(self, callback) -> None:
        """Run ``callback(vm)`` after every shrink-and-redistribute."""
        self._shrink_hooks.append(callback)

    def _alive_fields(self) -> list:
        alive = []
        live_refs = []
        for ref in self._fields:
            f = ref()
            if f is not None:
                alive.append(f)
                live_refs.append(ref)
        self._fields = live_refs
        return alive

    def _rank_specs_active(self) -> bool:
        plan = self.vm.faults.plan
        return (plan is not None
                and any(s.site == "rank" and not s.exhausted
                        for s in plan.specs))

    # -- the exchange-barrier hook --------------------------------------

    def at_exchange(self, src, tag: str) -> None:
        """Checkpoint, monitor, and inject at one exchange barrier.

        Ordering matters for the bitwise contract: the checkpoint cut
        is taken *before* the kill draw, so a restore reproduces the
        state the dead rank held entering this very barrier, and the
        retried exchange is indistinguishable from the fault-free
        one.
        """
        plan = self.vm.faults.plan
        rank_faults = self._rank_specs_active()
        if self.mode == "recover" and rank_faults:
            self.refresh_checkpoints()
        if plan is None or not rank_faults:
            return
        for r in range(self.vm.nranks):
            ev = plan.draw("rank", "straggler", f"rank{r}:{tag}")
            if ev is not None:
                self._hang(r, ev)
        self._detect_stragglers()
        for r in range(self.vm.nranks):
            ev = plan.draw("rank", "kill", f"rank{r}:{tag}")
            if ev is not None:
                self._on_kill(r, ev, tag)
                # recovery may have changed the rank map; remaining
                # ranks get their draw at the next barrier
                break

    # -- checkpointing ---------------------------------------------------

    def refresh_checkpoints(self) -> None:
        """Take the consistent cut: every registered field's payload
        on every rank, plus the persistent comm buffers, each with its
        CRC32.  Reading a shard flushes its pending deferred work, so
        the cut is well-defined."""
        vm = self.vm
        total = 0
        for f in self._alive_fields():
            for r in range(vm.nranks):
                payload = f.shards[r].to_numpy()
                self._field_ckpt[(id(f), r)] = (payload, _crc(payload))
                total += payload.nbytes
        for key, (addr, nbytes) in vm._buffers.items():
            raw = np.array(vm.contexts[key[0]].device.pool.read(
                addr, nbytes), copy=True)
            self._buffer_ckpt[key] = (raw, _crc(raw))
            total += nbytes
        self.stats.checkpoints += 1
        self.stats.checkpoint_bytes = total

    # -- stragglers ------------------------------------------------------

    def _hang(self, r: int, event) -> None:
        """Apply one injected hang: the rank's modeled clock stalls."""
        hang = self.vm.faults.plan.policy.straggler_hang_s
        ctx = self.vm.contexts[r]
        ctx.device.clock += hang
        ctx.device.runtime.compute.enqueue(
            f"hang:rank{r}", hang, "fault")
        event.detail.update({"rank": r, "hang_s": hang})
        self._open_stragglers[r] = event
        self.stats.stragglers_injected += 1

    def _detect_stragglers(self) -> None:
        vm = self.vm
        plan = vm.faults.plan
        clocks = [c.device.clock for c in vm.contexts]
        for r in detect_stragglers(clocks,
                                   plan.policy.straggler_threshold):
            if r in self._flagged:
                continue
            self._flagged.add(r)
            self.stats.stragglers_flagged += 1
            self.stats.detections += 1
            event = self._open_stragglers.pop(r, None)
            ordered = sorted(clocks)
            median = ordered[(len(ordered) - 1) // 2]
            ratio = clocks[r] / median if median > 0 else float("inf")
            if self.mode == "recover":
                hang = (event.detail.get("hang_s",
                                         plan.policy.straggler_hang_s)
                        if event is not None
                        else plan.policy.straggler_hang_s)
                self.stats.recovery_modeled_s += (
                    vm.faults.charge_recovery(
                        vm.runtime, f"straggler:rank{r}", hang,
                        cat="straggler"))
                action = (f"straggler flagged at {ratio:.1f}x median; "
                          f"stall absorbed by collective")
            else:
                action = (f"straggler flagged at {ratio:.1f}x median "
                          f"(detect mode)")
            plan.record_recovery(event, action)

    # -- rank kills ------------------------------------------------------

    def _on_kill(self, r: int, event, tag: str) -> None:
        vm = self.vm
        self.stats.kills_injected += 1
        self.stats.detections += 1
        event.detail.update({"rank": r, "nranks": vm.nranks,
                             "policy": (self.policy
                                        if self.mode == "recover"
                                        else "none")})
        if self.mode == "detect":
            raise RankFailureError(r, tag, vm.nranks)
        plan = vm.faults.plan
        backoff = plan.policy.backoff_s(0)
        seconds = vm.faults.charge_recovery(
            vm.runtime, f"detect:rank{r}", backoff, cat="backoff")
        if self.policy == "buddy":
            seconds += self._recover_buddy(r)
            action = (f"buddy restore onto spare rank "
                      f"({self.stats.restored_payloads} payloads)")
        else:
            old = vm.nranks
            seconds += self._recover_shrink(r)
            action = (f"shrunk {old} -> {vm.nranks} ranks and "
                      f"redistributed")
        self.stats.recoveries_by_policy[self.policy] = (
            self.stats.recoveries_by_policy.get(self.policy, 0) + 1)
        self.stats.recovery_modeled_s += seconds
        plan.record_recovery(event, action, retries=1,
                             backoff_s=backoff)
        # the store must describe the *new* machine before the next
        # draw can fire (a second kill restores from this state)
        self.refresh_checkpoints()

    def _recover_buddy(self, dead: int) -> float:
        """Rebuild rank ``dead`` on a spare context from its buddy's
        CRC32-validated checkpoint copy; returns the modeled restore
        transfer time charged on the fault lane."""
        vm = self.vm
        spare = vm._make_rank_context()
        moved = 0
        for f in self._alive_fields():
            entry = self._field_ckpt.get((id(f), dead))
            if entry is None:
                raise BuddyRestoreError(
                    dead, f"field {f.name}",
                    "no buddy checkpoint copy")
            payload, crc = entry
            if _crc(payload) != crc:
                raise BuddyRestoreError(
                    dead, f"field {f.name}",
                    "buddy checkpoint copy failed CRC32 validation")
            from ..qdp.fields import LatticeField

            shard = LatticeField(vm.local_lattice, f.spec,
                                 context=spare,
                                 name=f"{f.name}@r{dead}")
            shard.from_numpy(payload)
            f.shards[dead] = shard
            moved += payload.nbytes
            self.stats.restored_payloads += 1
        from ..comm.faces import FaceKernels

        vm.contexts[dead] = spare
        vm.face_kernels[dead] = FaceKernels(spare.kernel_cache,
                                            ir_stats=spare.stats.ir)
        # the comm buffers are rank state too: without them, halos
        # delivered before this barrier would be lost with the rank.
        # The spare is already installed, so re-resolving a key
        # allocates in *its* pool.
        dead_keys = [k for k in vm._buffers if k[0] == dead]
        for key in dead_keys:
            entry = self._buffer_ckpt.get(key)
            del vm._buffers[key]
            if entry is None:
                continue
            raw, crc = entry
            if _crc(raw) != crc:
                raise BuddyRestoreError(
                    dead, f"comm buffer {key[1]}:{key[2]}{key[3]:+d}",
                    "buffer checkpoint copy failed CRC32 validation")
            addr = vm._buffer(dead, key[1], key[2], key[3], raw.size)
            spare.device.pool.write(addr, raw)
            moved += raw.size
        # the spare joins at the collective barrier: its clock fast-
        # forwards to the bulk (it waited for the restore), so the
        # straggler detector does not mistake the *survivors* for
        # stragglers relative to a newborn clock
        transfer = vm.net.message_time(max(moved, 1))
        others = [c.device.clock
                  for i, c in enumerate(vm.contexts) if i != dead]
        spare.device.clock = (max(others) if others else 0.0) + transfer
        return vm.faults.charge_recovery(
            vm.runtime, f"restore:rank{dead}", transfer, cat="restore")

    def _recover_shrink(self, dead: int) -> float:
        """Rebuild the machine on a smaller processor grid and
        re-partition every field from the checkpointed global state;
        returns the modeled redistribution time."""
        from ..comm.grid import shrunken_grid

        vm = self.vm
        fields = self._alive_fields()
        snapshots = {}
        moved = 0
        for f in fields:
            snapshots[id(f)] = self._global_from_checkpoint(f)
            moved += snapshots[id(f)].nbytes
        base = max((c.device.clock for c in vm.contexts), default=0.0)
        new_grid = shrunken_grid(vm.grid, vm.decomp.global_dims)
        vm._rebuild(new_grid)
        for f in fields:
            f._reshard()
            f.from_global(snapshots[id(f)])
        self._field_ckpt.clear()
        self._buffer_ckpt.clear()
        self._flagged.clear()
        self._open_stragglers.clear()
        for hook in self._shrink_hooks:
            hook(vm)
        # every byte of field state crossed the wire to its new owner;
        # the survivors' clocks carry forward through the stall
        transfer = vm.net.message_time(max(moved, 1))
        for c in vm.contexts:
            c.device.clock = base + transfer
        return vm.faults.charge_recovery(
            vm.runtime, f"shrink:{vm.nranks}ranks", transfer,
            cat="restore")

    def _global_from_checkpoint(self, f) -> np.ndarray:
        """Reassemble ``f``'s global array from the checkpoint store
        (the dead rank's shard included) under the *current* decomp."""
        vm = self.vm
        g = vm.global_lattice
        ranks, lidx = vm.decomp.owner_of(g.coords)
        sample = None
        shards = []
        for r in range(vm.nranks):
            entry = self._field_ckpt.get((id(f), r))
            if entry is None:
                raise BuddyRestoreError(
                    r, f"field {f.name}",
                    "no checkpoint copy to redistribute from")
            payload, crc = entry
            if _crc(payload) != crc:
                raise BuddyRestoreError(
                    r, f"field {f.name}",
                    "checkpoint copy failed CRC32 validation")
            shards.append(payload)
            sample = payload
        out = np.empty((g.nsites,) + f.spec.shape, dtype=sample.dtype)
        for r in range(vm.nranks):
            sel = ranks == r
            out[sel] = shards[r][lidx[sel]]
        return out

    # -- reporting -------------------------------------------------------

    def as_json(self) -> dict:
        return {"mode": self.mode, "policy": self.policy,
                **self.stats.as_json()}

"""``python -m repro.lint`` — static-analysis report for the kernel suite.

Builds the framework's standard kernels on a small lattice — the
Wilson dslash, the packed clover operator, the reduction kernels
(``norm2``, ``innerProduct``, ``sum_sites``) and the halo
gather/scatter copies — and runs the full PTX verifier pass pipeline
(:mod:`repro.ptx.verifier`) over every generated module, plus the
expression-AST lint (:mod:`repro.core.lint`) over the operators'
defining expressions.

Exit status is 0 when no error-severity diagnostic is found, 1
otherwise — suitable as a CI gate next to the test suite.
"""

from __future__ import annotations

import argparse
import sys
import warnings

from .core.lint import LINT_PASSES, lint_assignment
from .diagnostics import Severity
from .ptx.verifier import PASSES, run_passes


def _parse_dims(text: str) -> tuple[int, ...]:
    try:
        dims = tuple(int(x) for x in text.replace("x", ",").split(",") if x)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad lattice {text!r}: need comma/x-separated extents >= 2")
    if not dims or any(d < 2 for d in dims):
        raise argparse.ArgumentTypeError(
            f"bad lattice {text!r}: need comma/x-separated extents >= 2")
    return dims


_parse_dims.__name__ = "lattice"   # argparse error messages use the name


def _build_kernel_suite(dims: tuple[int, ...]):
    """Run the built-in operators once; return (ctx, ast_lint_findings).

    Every kernel built along the way lands in ``ctx.module_cache``
    (and the face copies are built explicitly), so afterwards the
    caller can verify the complete generated-kernel population.
    """
    import numpy as np

    from .core.context import Context
    from .core.reduction import innerProduct, norm2, sum_sites
    from .qcd.cloverop import CloverOperator, CloverParams
    from .qcd.dslash import WilsonDslash, dslash_expr
    from .qcd.gauge import weak_gauge
    from .qdp.fields import latt_complex, latt_fermion
    from .qdp.lattice import Lattice

    ctx = Context(autotune=False)
    lat = Lattice(dims)
    rng = np.random.default_rng(7)
    u = weak_gauge(lat, rng, eps=0.3, context=ctx)

    psi = latt_fermion(lat, context=ctx)
    psi.gaussian(rng)
    chi = latt_fermion(lat, context=ctx)
    dest = latt_fermion(lat, context=ctx)

    # dslash (both signs exercise both projector sets)
    dslash = WilsonDslash(u)
    dslash(dest, psi)
    dslash(chi, psi, sign=-1)

    # clover operator (site-diagonal clover + hopping term)
    clov = CloverOperator(u, CloverParams(kappa=0.12, clover_coeff=1.0))
    clov.apply(dest, psi)
    clov.apply_dagger(chi, psi)

    # reductions (sum needs a scalar-shaped expression)
    norm2(psi, context=ctx)
    innerProduct(chi, psi, context=ctx)
    z = latt_complex(lat, context=ctx)
    z.gaussian(rng)
    sum_sites(z.ref() * z.ref(), context=ctx)

    # AST lint over the operator-defining expressions (raw view:
    # no destination aliasing is expected, so findings are notes)
    ast_findings = lint_assignment(dest, dslash_expr(u, psi))

    return ctx, ast_findings


def _face_modules(precision: str = "f64"):
    from .comm.faces import build_gather_kernel, build_scatter_kernel

    return [build_gather_kernel(24, precision),
            build_scatter_kernel(24, precision)]


def _severity_counts(diagnostics) -> dict[Severity, int]:
    counts = {s: 0 for s in Severity}
    for d in diagnostics:
        counts[d.severity] += 1
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Verify the built-in kernel suite with the PTX "
                    "pass pipeline and the expression-AST lint.")
    parser.add_argument("--lattice", type=_parse_dims, default=(4, 4, 4, 4),
                        metavar="X,Y,Z,T",
                        help="lattice extents (default 4,4,4,4)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every diagnostic, notes included")
    args = parser.parse_args(argv)

    print(f"repro.lint: PTX verifier passes: {', '.join(PASSES)}")
    print(f"repro.lint: AST lint passes:     {', '.join(LINT_PASSES)}")
    print(f"repro.lint: building kernel suite on lattice "
          f"{'x'.join(map(str, args.lattice))} ...")

    # The build itself runs under the REPRO_VERIFY hooks; anything the
    # hooks warn about is re-reported below, so keep the build quiet.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        ctx, ast_findings = _build_kernel_suite(args.lattice)
        modules = [entry[0] for entry in ctx.module_cache.values()]
        modules.extend(_face_modules())

    worst = Severity.NOTE
    n_diags = 0
    print(f"\n-- PTX verifier: {len(modules)} kernel(s) "
          f"x {len(PASSES)} passes " + "-" * 20)
    for module in modules:
        diagnostics = run_passes(module)
        n_insts = len(module.instructions)
        if not diagnostics:
            print(f"  {module.name:<44} {n_insts:>6} insts  clean")
            continue
        n_diags += len(diagnostics)
        counts = _severity_counts(diagnostics)
        worst = max(worst, max(d.severity for d in diagnostics))
        summary = ", ".join(f"{counts[s]} {s.label}" for s in
                            sorted(counts, reverse=True) if counts[s])
        print(f"  {module.name:<44} {n_insts:>6} insts  {summary}")
        for d in diagnostics:
            if args.verbose or d.severity >= Severity.WARNING:
                print(f"      {d.render()}")

    print("\n-- AST lint: operator expressions " + "-" * 20)
    if not ast_findings:
        print("  dslash expression: clean")
    n_diags += len(ast_findings)
    for d in ast_findings:
        worst = max(worst, d.severity)
        print(f"  {d.render()}")

    status = ("FAIL" if worst >= Severity.ERROR else "ok")
    print(f"\nrepro.lint: {status}: {len(modules)} kernel(s) verified, "
          f"{n_diags} diagnostic(s), worst severity "
          f"{worst.label if n_diags else 'none'}")
    return 1 if worst >= Severity.ERROR else 0


if __name__ == "__main__":
    sys.exit(main())

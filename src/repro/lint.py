"""``python -m repro.lint`` — static-analysis report for the kernel suite.

Builds the framework's standard kernels on a small lattice — the
Wilson dslash, the packed clover operator, the reduction kernels
(``norm2``, ``innerProduct``, ``sum_sites``) and the halo
gather/scatter copies — and runs the full PTX verifier pass pipeline
(:mod:`repro.ptx.verifier`) over every generated module, plus the
expression-AST lint (:mod:`repro.core.lint`) over the operators'
defining expressions.

Each kernel is analyzed under the :class:`~repro.ptx.absint.KernelEnv`
recorded at build time (``Context.analysis_envs``) — actual region
sizes, scalar parameter values, and gather-table contents — so the
report states *proven* facts per kernel: bounds verdicts,
transactions/warp and memory efficiency from the coalescing model,
divergent branches, register pressure, and the static occupancy seed
the auto-tuner starts from.

``--json`` emits the same report as a single JSON document (schema
below) for CI consumption.

Exit status:

``0``
    No error-severity diagnostic found.
``1``
    At least one error-severity diagnostic.
``2``
    Usage error (bad command line), per argparse convention.

JSON schema (``schema_version`` 8)::

    {
      "schema_version": 8,
      "lattice": [int, ...],
      "passes": [str, ...],            # PTX verifier pass names
      "ast_passes": [str, ...],        # expression-AST lint pass names
      "kernels": [
        {
          "name": str,
          "instructions": int,
          "regs_per_thread": int,
          "static_block_seed": int,    # auto-tuner starting block
          "bounds": {
            "verdicts": {str: int},    # proven/oob/guarded/unguarded
            "proven": bool,            # every access proven in-bounds
            "heuristic_fallbacks": int
          },
          "coalescing": {
            "transactions_per_warp": float,
            "ideal_transactions_per_warp": float,
            "memory_efficiency": float,
            "fully_coalesced": bool
          },
          "divergence": {"branches": int, "divergent": int},
          "diagnostics": [
            {"severity": str, "pass": str, "message": str,
             "location": str}, ...
          ]
        }, ...
      ],
      "ast_findings": [ same shape as "diagnostics" entries ],
      "module_cache": {                # structural generated-kernel cache
        "hits": int, "misses": int
      },
      "fusion": {                      # deferred-evaluation engine
        "groups": int,                 # multi-statement kernels launched
        "fused_statements": int        # statements they covered
      },
      "runtime": {                     # stream/event runtime timeline
        "streams": "on" | "off",       # the REPRO_STREAMS mode it ran in
        "elapsed_s": float,            # makespan over all lanes
        "serial_s": float,             # serial sum of every span
        "overlap_fraction": float,     # 1 - elapsed/serial
        "critical_path_s": float,
        "lane_busy_s": {str: float}    # busy seconds per lane
      },
      "cache": {                       # field software-cache counters
        "hits": int, "misses": int,
        "page_ins": int, "page_outs": int,
        "spills": int, "evictions_clean": int,
        "bytes_paged_in": int, "bytes_paged_out": int,
        "resident_bytes_hwm": int
      },
      "faults": {                      # fault injection & recovery
        "mode": "off" | "plan",        # whether a REPRO_FAULTS plan ran
        "injected": int, "recovered": int,
        "retries": int, "backoff_s": float,
        "solver_restarts": int
      },
      "backend": {                     # execution backends (REPRO_BACKEND)
        "mode": str,                   # resolved knob value ("sim"/"cpu")
        "kernels": {str: int},         # backend -> kernels built for it
        "compile_seconds": {str: float},
        "launches": {str: int},        # backend -> launches through it
        "fallbacks": int,              # non-sim builds that degraded
        "fallback_kernels": {str: str},# kernel -> unsupported construct
        "wall_s_by_family": {str: float}  # measured host wall-clock per
                                       # kernel family (eval/fus/red/...)
      },
      "ir": {                          # SSA IR layer (REPRO_IR)
        "mode": "off" | "verify" | "opt",
        "modules_verified": int,       # SSA views built and checked
        "modules_optimized": int,      # streams rewritten under opt
        "pressure_reverts": int,       # streams the pressure gate refused
        "instructions_before": int,    # totals over optimized modules
        "instructions_after": int,
        "live_regs_before": int,       # liveness-based 32-bit slots
        "live_regs_after": int,
        "passes": {str: {str: int}}    # per-pass counters
      },
      "serving": {                     # multi-tenant layer (REPRO_SERVE)
        "mode": "fair" | "fifo" | "off",
        "scheduler": {"policy": str, "decisions": int,
                      "quantum_s": float},
        "admission": {"budget_bytes": int, "queued": int,
                      "rejections": int},
        "jit_cache": {                 # shared compiled-kernel cache
          "kernels": int, "cross_tenant_hits": int,
          "hits_by_tenant": {str: int}, "misses_by_tenant": {str: int}
        },
        "tenants": {str: {...}},       # TenantStats.as_json() + weight
        "sessions": {                  # server-wide session accounting
          "decisions": int, "admission_queued": int,
          "admission_rejections": int, "sessions_submitted": int,
          "sessions_completed": int, "idle_s": float
        }
      },
      "resilience": {                  # rank fault tolerance
        "mode": "off" | "detect" | "recover",  # REPRO_RESILIENCE
        "policy": "buddy" | "shrink" | null,   # null when mode is off
        "kills_injected": int,         # fired rank.kill faults
        "stragglers_injected": int,    # fired rank.straggler faults
        "stragglers_flagged": int,     # ranks the detector flagged
        "detections": int,             # dead ranks detected
        "recoveries_by_policy": {str: int},
        "recovery_modeled_s": float,   # fault-lane seconds charged
        "checkpoints": int,            # buddy checkpoint refreshes
        "checkpoint_bytes": int,
        "restored_payloads": int       # payloads re-materialized
      },
      "summary": {
        "kernels": int, "diagnostics": int,
        "errors": int, "warnings": int, "notes": int,
        "worst": str | null,           # "note"/"warning"/"error"
        "status": "ok" | "fail"
      }
    }
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import warnings

from .core.lint import LINT_PASSES, lint_assignment
from .diagnostics import Severity
from .ptx.verifier import PASSES, run_passes


def _parse_dims(text: str) -> tuple[int, ...]:
    try:
        dims = tuple(int(x) for x in text.replace("x", ",").split(",") if x)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad lattice {text!r}: need comma/x-separated extents >= 2")
    if not dims or any(d < 2 for d in dims):
        raise argparse.ArgumentTypeError(
            f"bad lattice {text!r}: need comma/x-separated extents >= 2")
    return dims


_parse_dims.__name__ = "lattice"   # argparse error messages use the name


def _build_kernel_suite(dims: tuple[int, ...]):
    """Run the built-in operators once; return (ctx, lat, ast_findings).

    Every kernel built along the way lands in ``ctx.module_cache``
    (and the face copies are built explicitly), so afterwards the
    caller can verify the complete generated-kernel population.
    """
    import numpy as np

    from .core.context import Context
    from .core.reduction import innerProduct, norm2, sum_sites
    from .qcd.cloverop import CloverOperator, CloverParams
    from .qcd.dslash import WilsonDslash, dslash_expr
    from .qcd.gauge import weak_gauge
    from .qdp.fields import latt_complex, latt_fermion
    from .qdp.lattice import Lattice

    ctx = Context(autotune=False)
    lat = Lattice(dims)
    rng = np.random.default_rng(7)
    u = weak_gauge(lat, rng, eps=0.3, context=ctx)

    psi = latt_fermion(lat, context=ctx)
    psi.gaussian(rng)
    chi = latt_fermion(lat, context=ctx)
    dest = latt_fermion(lat, context=ctx)

    # dslash (both signs exercise both projector sets)
    dslash = WilsonDslash(u)
    dslash(dest, psi)
    dslash(chi, psi, sign=-1)

    # clover operator (site-diagonal clover + hopping term)
    clov = CloverOperator(u, CloverParams(kappa=0.12, clover_coeff=1.0))
    clov.apply(dest, psi)
    clov.apply_dagger(chi, psi)

    # reductions (sum needs a scalar-shaped expression)
    norm2(psi, context=ctx)
    innerProduct(chi, psi, context=ctx)
    z = latt_complex(lat, context=ctx)
    z.gaussian(rng)
    sum_sites(z.ref() * z.ref(), context=ctx)

    # drain the deferred-evaluation queue: pending statements (fused
    # kernels included) must land in module_cache before verification
    ctx.flush()

    # AST lint over the operator-defining expressions (raw view:
    # no destination aliasing is expected, so findings are notes)
    ast_findings = lint_assignment(dest, dslash_expr(u, psi))

    return ctx, lat, ast_findings


def _suite_modules(ctx, lat, precision: str = "f64"):
    """(module, compiled, env) for every kernel the suite built, plus
    the halo face copies bound to a t-face of the same lattice.

    The face copies are analyzed against the face normal to the
    slowest-varying (t) dimension — a contiguous site run, which is
    the direction the paper splits the lattice in.
    """
    from .comm.faces import build_gather_kernel, build_scatter_kernel, face_env

    out = []
    for entry in ctx.module_cache.values():
        module, compiled = entry[0], entry[-1]
        out.append((module, compiled, ctx.analysis_envs.get(module.name)))

    t_face = lat.face_sites(lat.nd - 1, +1)
    for kind, build in (("gather", build_gather_kernel),
                        ("scatter", build_scatter_kernel)):
        module = build(24, precision, ir_stats=ctx.stats.ir)
        compiled, _ = ctx.kernel_cache.get_or_compile(module.render())
        env = face_env(kind, 24, precision, lat.nsites, t_face)
        out.append((module, compiled, env))
    return out


def _serving_mini_run(dims: tuple[int, ...] = (2, 2, 2, 4)):
    """A tiny two-tenant serving run under the current REPRO_SERVE
    mode; returns the :class:`~repro.serve.Server` for its report.

    Two tenants solve the same CG shape so the report demonstrates the
    shared-JIT-cache economics (the second tenant's kernels are all
    cross-tenant hits) alongside the scheduler and admission counters.
    """
    from .diagnostics import serve_mode
    from .serve import Server, cg_diag_workload

    srv = Server(policy=serve_mode())
    a = srv.tenant("tenant-a", weight=2.0)
    b = srv.tenant("tenant-b")
    srv.submit(a, cg_diag_workload(dims=dims, seed=3, max_iter=8))
    srv.submit(b, cg_diag_workload(dims=dims, seed=4, max_iter=8))
    srv.drain()
    return srv


def _resilience_mini_run(global_dims=(2, 2, 2, 4),
                         grid_dims=(1, 1, 1, 2)) -> dict:
    """A tiny two-rank VM run under the current ``REPRO_RESILIENCE``
    mode; returns the resilience JSON block (zeros when off).

    One boundary-crossing shift per dimension drives the exchange
    barrier — where buddy checkpoints refresh and rank faults are
    drawn — so a ``REPRO_RESILIENCE=recover`` run with a
    ``REPRO_FAULTS`` plan carrying ``rank.kill`` specs surfaces its
    kill/recovery counters here.
    """
    import numpy as np

    from .comm import VirtualMachine
    from .diagnostics import resilience_mode
    from .qdp.typesys import fermion
    from .resilience import ResilienceStats

    vm = VirtualMachine(global_dims, grid_dims)
    g = vm.global_lattice
    rng = np.random.default_rng(11)
    data = (rng.normal(size=(g.nsites,) + (4, 3))
            + 1j * rng.normal(size=(g.nsites,) + (4, 3)))
    f = vm.field(fermion(), "psi")
    f.from_global(data)
    d = vm.field(fermion(), "chi")
    for mu in range(len(global_dims)):
        vm.shift_into(d, f, mu, +1)
        f, d = d, f
    if vm.resilience is not None:
        return vm.resilience.as_json()
    return {"mode": resilience_mode(), "policy": None,
            **ResilienceStats().as_json()}


def _wall_by_family(per_kernel_wall_s: dict) -> dict:
    """Aggregate measured per-kernel wall-clock by kernel family.

    Generated kernel names are ``<family>_<hash>`` (eval/fus/red/
    gather/scatter...); the family is what is comparable across runs —
    the hash suffix changes with lattice size and expression shape.
    """
    out: dict[str, float] = {}
    for name, secs in per_kernel_wall_s.items():
        fam = name.split("_")[0]
        out[fam] = out.get(fam, 0.0) + secs
    return out


def _diag_json(d) -> dict:
    return {"severity": d.severity.label, "pass": d.pass_name,
            "message": d.message, "location": d.location}


def _kernel_report(module, compiled, env, spec):
    """Analyze one kernel; return (facts-dict, diagnostics)."""
    from .device.autotune import static_block_seed
    from .ptx.absint import analyze_module

    analysis = analyze_module(module, env=env)
    diagnostics = run_passes(module, env=env, analysis=analysis)
    regs = getattr(compiled, "regs_per_thread", None) or analysis.max_live_regs
    verdicts: dict[str, int] = {}
    for a in analysis.accesses:
        verdicts[a.verdict] = verdicts.get(a.verdict, 0) + 1
    record = {
        "name": module.name,
        "instructions": len(module.instructions),
        "regs_per_thread": regs,
        "static_block_seed": static_block_seed(spec, regs),
        "bounds": {
            "verdicts": verdicts,
            "proven": analysis.bounds_proven,
            "heuristic_fallbacks": analysis.n_heuristic,
        },
        "coalescing": {
            "transactions_per_warp": analysis.transactions_per_warp,
            "ideal_transactions_per_warp":
                analysis.ideal_transactions_per_warp,
            "memory_efficiency": analysis.memory_efficiency,
            "fully_coalesced": analysis.fully_coalesced,
        },
        "divergence": {
            "branches": len(analysis.branches),
            "divergent": len(analysis.divergent_branches),
        },
        "diagnostics": [_diag_json(d) for d in diagnostics],
    }
    return record, diagnostics


def _severity_counts(diagnostics) -> dict[Severity, int]:
    counts = {s: 0 for s in Severity}
    for d in diagnostics:
        counts[d.severity] += 1
    return counts


def _facts_line(record: dict) -> str:
    b, c, v = record["bounds"], record["coalescing"], record["divergence"]
    n_acc = sum(b["verdicts"].values())
    if b["proven"]:
        bounds = f"bounds proven ({n_acc}/{n_acc})"
    else:
        bounds = "bounds " + ",".join(
            f"{n} {verdict}" for verdict, n in sorted(b["verdicts"].items()))
    coal = (f"eff={c['memory_efficiency']:.2f} "
            f"({c['transactions_per_warp']:.0f} tx/warp, "
            f"ideal {c['ideal_transactions_per_warp']:.0f})")
    div = f"{v['divergent']}/{v['branches']} divergent"
    return (f"{bounds}; {coal}; {div}; "
            f"{record['regs_per_thread']} regs -> "
            f"block seed {record['static_block_seed']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Verify the built-in kernel suite with the PTX "
                    "pass pipeline and the expression-AST lint.  "
                    "Exit status: 0 clean, 1 error-severity findings, "
                    "2 usage error.")
    parser.add_argument("--lattice", type=_parse_dims, default=(4, 4, 4, 4),
                        metavar="X,Y,Z,T",
                        help="lattice extents (default 4,4,4,4)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as a JSON document "
                             "(schema_version 8; see module docstring)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every diagnostic, notes included")
    args = parser.parse_args(argv)

    text = not args.json
    if text:
        print(f"repro.lint: PTX verifier passes: {', '.join(PASSES)}")
        print(f"repro.lint: AST lint passes:     {', '.join(LINT_PASSES)}")
        print(f"repro.lint: building kernel suite on lattice "
              f"{'x'.join(map(str, args.lattice))} ...")

    # The build itself runs under the REPRO_VERIFY hooks; anything the
    # hooks warn about is re-reported below, so keep the build quiet.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        ctx, lat, ast_findings = _build_kernel_suite(args.lattice)
        suite = _suite_modules(ctx, lat)
        serving = _serving_mini_run()
        resilience = _resilience_mini_run()

    worst = Severity.NOTE
    n_diags = 0
    counts_total = {s: 0 for s in Severity}
    kernels = []
    if text:
        print(f"\n-- PTX verifier: {len(suite)} kernel(s) "
              f"x {len(PASSES)} passes " + "-" * 20)
    for module, compiled, env in suite:
        record, diagnostics = _kernel_report(module, compiled, env,
                                             ctx.device.spec)
        kernels.append(record)
        n_diags += len(diagnostics)
        counts = _severity_counts(diagnostics)
        for s, n in counts.items():
            counts_total[s] += n
        if diagnostics:
            worst = max(worst, max(d.severity for d in diagnostics))
        if not text:
            continue
        if diagnostics:
            summary = ", ".join(f"{counts[s]} {s.label}" for s in
                                sorted(counts, reverse=True) if counts[s])
        else:
            summary = "clean"
        print(f"  {record['name']:<44} {record['instructions']:>6} insts"
              f"  {summary}")
        print(f"      {_facts_line(record)}")
        for d in diagnostics:
            if args.verbose or d.severity >= Severity.WARNING:
                print(f"      {d.render()}")

    if text:
        print("\n-- AST lint: operator expressions " + "-" * 20)
        if not ast_findings:
            print("  dslash expression: clean")
    n_diags += len(ast_findings)
    for d in ast_findings:
        worst = max(worst, d.severity)
        counts_total[d.severity] += 1
        if text:
            print(f"  {d.render()}")

    failed = worst >= Severity.ERROR
    timeline = ctx.device.runtime.timeline
    cache = ctx.field_cache.stats
    if text:
        print(f"\n-- caches " + "-" * 44)
        print(f"  module cache: {ctx.stats.module_cache_hits} hit(s), "
              f"{ctx.stats.module_cache_misses} miss(es)")
        print(f"  fusion: {ctx.stats.fusion_groups} fused group(s) "
              f"covering {ctx.stats.fused_statements} statement(s)")
        print(f"  field cache: {cache.hits} hit(s), {cache.misses} "
              f"miss(es), {cache.spills} spill(s), high water "
              f"{cache.resident_bytes_hwm} bytes")
        print(f"\n-- runtime (REPRO_STREAMS="
              f"{'on' if ctx.device.runtime.enabled else 'off'}) "
              + "-" * 24)
        print(f"  makespan {timeline.end_s * 1e6:.1f} us; serial sum "
              f"{timeline.serial_s * 1e6:.1f} us; overlap "
              f"{timeline.overlap_fraction:.1%}; critical path "
              f"{timeline.critical_path_s * 1e6:.1f} us")
        fc = ctx.stats
        print(f"  faults (REPRO_FAULTS="
              f"{'plan' if ctx.device.faults.active else 'off'}): "
              f"{fc.faults_injected} injected, {fc.faults_recovered} "
              f"recovered, {fc.retries} retry(ies), "
              f"{fc.backoff_s * 1e6:.1f} us backoff, "
              f"{fc.solver_restarts} solver restart(s)")
        ir = ctx.stats.ir
        print(f"\n-- IR (REPRO_IR={ir.mode or 'off'}) " + "-" * 32)
        print(f"  {ir.modules_verified} module(s) SSA-verified, "
              f"{ir.modules_optimized} optimized, "
              f"{ir.pressure_reverts} pressure revert(s)")
        if ir.modules_optimized:
            print(f"  instructions {ir.instructions_before} -> "
                  f"{ir.instructions_after}; live register slots "
                  f"{ir.live_regs_before} -> {ir.live_regs_after} "
                  f"({ir.live_regs_saved} saved)")
            for name, counters in ir.passes.items():
                facts = ", ".join(f"{k}={v}" for k, v in counters.items())
                print(f"    {name}: {facts}")
        be = ctx.stats.backend
        print(f"\n-- backends (REPRO_BACKEND={be.mode}) " + "-" * 26)
        for name in sorted(set(be.kernels) | set(be.launches)):
            print(f"  {name}: {be.kernels.get(name, 0)} kernel(s) built "
                  f"in {be.compile_seconds.get(name, 0.0) * 1e3:.1f} ms, "
                  f"{be.launches.get(name, 0)} launch(es)")
        if be.fallbacks:
            print(f"  {be.fallbacks} fallback(s) to sim:")
            for kname, why in be.fallback_kernels.items():
                print(f"    {kname}: {why}")
        fam = _wall_by_family(ctx.device.stats.per_kernel_wall_s)
        if fam:
            wall = ", ".join(f"{k} {v * 1e3:.1f} ms"
                             for k, v in sorted(fam.items()))
            print(f"  measured kernel wall-clock: {wall}")
        sj = serving.as_json()
        print(f"\n-- serving (REPRO_SERVE={sj['mode']}) " + "-" * 26)
        print(f"  scheduler {sj['scheduler']['policy']}: "
              f"{sj['scheduler']['decisions']} decision(s), quantum "
              f"{sj['scheduler']['quantum_s'] * 1e6:.0f} us; admission: "
              f"{sj['admission']['queued']} queued, "
              f"{sj['admission']['rejections']} rejection(s)")
        print(f"  shared JIT cache: {sj['jit_cache']['kernels']} "
              f"kernel(s), {sj['jit_cache']['cross_tenant_hits']} "
              f"cross-tenant hit(s)")
        for name, t in sorted(sj["tenants"].items()):
            print(f"  {name} (weight {t['weight']:g}): "
                  f"{t['sessions_completed']}/{t['sessions_submitted']} "
                  f"session(s), {t['launches']} launch(es), service "
                  f"{t['service_s'] * 1e6:.1f} us, jit "
                  f"{t['jit_misses']} compile(s) + {t['jit_hits']} "
                  f"hit(s) ({t['jit_shared_hits']} cross-tenant)")
        rz = resilience
        print(f"\n-- resilience (REPRO_RESILIENCE={rz['mode']}) "
              + "-" * 20)
        print(f"  policy {rz['policy'] or '-'}: {rz['kills_injected']} "
              f"kill(s), {rz['stragglers_flagged']}/"
              f"{rz['stragglers_injected']} straggler(s) flagged, "
              f"{rz['detections']} detection(s)")
        recov = ", ".join(
            f"{k} x{v}" for k, v in
            sorted(rz["recoveries_by_policy"].items())) or "none"
        print(f"  recoveries: {recov}; modeled cost "
              f"{rz['recovery_modeled_s'] * 1e6:.1f} us; "
              f"{rz['checkpoints']} checkpoint(s) "
              f"({rz['checkpoint_bytes']} bytes), "
              f"{rz['restored_payloads']} payload(s) restored")
        status = "FAIL" if failed else "ok"
        print(f"\nrepro.lint: {status}: {len(suite)} kernel(s) verified, "
              f"{n_diags} diagnostic(s), worst severity "
              f"{worst.label if n_diags else 'none'}")
    else:
        be = ctx.stats.backend
        report = {
            "schema_version": 8,
            "lattice": list(args.lattice),
            "passes": list(PASSES),
            "ast_passes": list(LINT_PASSES),
            "kernels": kernels,
            "ast_findings": [_diag_json(d) for d in ast_findings],
            "module_cache": {
                "hits": ctx.stats.module_cache_hits,
                "misses": ctx.stats.module_cache_misses,
            },
            "fusion": {
                "groups": ctx.stats.fusion_groups,
                "fused_statements": ctx.stats.fused_statements,
            },
            "runtime": {
                "streams": "on" if ctx.device.runtime.enabled else "off",
                "elapsed_s": timeline.end_s,
                "serial_s": timeline.serial_s,
                "overlap_fraction": timeline.overlap_fraction,
                "critical_path_s": timeline.critical_path_s,
                "lane_busy_s": timeline.lane_busy(),
            },
            "cache": dataclasses.asdict(cache),
            "faults": {
                "mode": "plan" if ctx.device.faults.active else "off",
                "injected": ctx.stats.faults_injected,
                "recovered": ctx.stats.faults_recovered,
                "retries": ctx.stats.retries,
                "backoff_s": ctx.stats.backoff_s,
                "solver_restarts": ctx.stats.solver_restarts,
            },
            "backend": {
                "mode": be.mode,
                "kernels": dict(be.kernels),
                "compile_seconds": dict(be.compile_seconds),
                "launches": dict(be.launches),
                "fallbacks": be.fallbacks,
                "fallback_kernels": dict(be.fallback_kernels),
                "wall_s_by_family": _wall_by_family(
                    ctx.device.stats.per_kernel_wall_s),
            },
            "ir": ctx.stats.ir.as_json(),
            "serving": serving.as_json(),
            "resilience": resilience,
            "summary": {
                "kernels": len(suite),
                "diagnostics": n_diags,
                "errors": counts_total[Severity.ERROR],
                "warnings": counts_total[Severity.WARNING],
                "notes": counts_total[Severity.NOTE],
                "worst": worst.label if n_diags else None,
                "status": "fail" if failed else "ok",
            },
        }
        json.dump(report, sys.stdout, indent=2)
        print()
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

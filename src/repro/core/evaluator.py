"""Expression evaluation: the launch orchestration path.

``evaluate(dest, expr, subset)`` is what an assignment like
``psi = u * phi`` runs through (paper Secs. III-V):

1. *Normalize* the AST: shifts of non-leaf subexpressions are
   materialized into temporaries (QDP++ semantics; also the paper's
   "shifts of shifts execute the inner-most shift non-overlapping"),
   and a destination aliased inside a shift is copied first.
2. Compute the structural *signature*; hit or populate the generated-
   module cache, invoking the code generator + PTX verifier + driver
   JIT on a miss (the compile cost is charged to the device clock).
3. Walk the AST leaves and *make the referenced fields available* in
   device memory through the software cache (paper Sec. IV).
4. Bind parameters and launch through the per-kernel auto-tuner
   (paper Sec. VII).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from ..device.memmodel import KernelCost
from ..diagnostics import verify_mode
from ..ir.pipeline import prepare_module
from ..ptx.absint import KernelEnv, MemRegion, merge_envs, table_region
from ..ptx.verifier import verify
from .codegen import _check_assign_types, build_expression_kernel
from .lint import check_assignment

if TYPE_CHECKING:
    from ..qdp.lattice import Subset
from .context import Context, default_context
from .expr import (
    BinaryNode,
    CustomOpNode,
    Expr,
    FieldRef,
    ShiftNode,
    SlotAssigner,
    TraceNode,
    UnaryNode,
    as_expr,
)


def _spec_sig(spec) -> str:
    return (f"{spec.precision}:s{spec.spin}:c{spec.color}:"
            f"{'c' if spec.is_complex else 'r'}")


def _rebuild(node: Expr, new_children) -> Expr:
    """Rebuild an inner node with replaced children."""
    if isinstance(node, BinaryNode):
        return BinaryNode(node.op, new_children[0], new_children[1])
    if isinstance(node, UnaryNode):
        return UnaryNode(node.op, new_children[0])
    if isinstance(node, TraceNode):
        return TraceNode(node.which, new_children[0])
    if isinstance(node, ShiftNode):
        return ShiftNode(new_children[0], node.mu, node.sign)
    if isinstance(node, CustomOpNode):
        return CustomOpNode(node.name, tuple(new_children), node.spec,
                            node.gen)
    from .expr import PowNode

    if isinstance(node, PowNode):
        return PowNode(new_children[0], node.exponent)
    raise TypeError(f"cannot rebuild {type(node).__name__}")


def _normalize(node: Expr, dest, ctx: Context,
               temps: list | None = None) -> Expr:
    """Materialize shift-of-expression and shift-of-destination.

    Created temporaries are appended to ``temps`` so the caller can
    :meth:`~repro.memory.cache.FieldCache.release` them once the
    statement that consumes them has launched — a dead temporary must
    never cost D2H spill traffic later.
    """
    children = node.children()
    if not children:
        return node
    new = [_normalize(c, dest, ctx, temps) for c in children]
    if isinstance(node, ShiftNode):
        child = new[0]
        needs_temp = not isinstance(child, FieldRef)
        aliases_dest = (isinstance(child, FieldRef)
                        and child.field.uid == dest.uid)
        if needs_temp or aliases_dest:
            temp = _new_temp(dest.lattice, child.spec, ctx)
            evaluate(temp, child, context=ctx)
            if temps is not None:
                temps.append(temp)
            child = FieldRef(temp)
        return ShiftNode(child, node.mu, node.sign)
    if all(a is b for a, b in zip(new, children)):
        return node
    return _rebuild(node, new)


def _new_temp(lattice, spec, ctx: Context):
    from ..qdp.fields import LatticeField

    return LatticeField(lattice, spec, context=ctx, name="__temp")


def evaluate(dest, expr, subset: "Subset | None" = None,
             context: Context | None = None) -> KernelCost:
    """Evaluate ``dest = expr`` (optionally on a subset of sites).

    With fusion enabled (the ``REPRO_FUSION`` knob, default on) the
    statement is *enqueued* on the context's fusion queue and a lazy
    :class:`~repro.core.fusion.PendingCost` is returned; the kernel —
    possibly fused with neighboring statements — launches at the next
    barrier.  Otherwise launches eagerly and returns the modeled
    :class:`KernelCost` directly.
    """
    ctx = context if context is not None else getattr(
        dest, "context", None) or default_context()
    lattice = dest.lattice
    if subset is None:
        subset = lattice.all_sites
    expr = as_expr(expr)
    if len(subset) == 0:
        # nothing to evaluate (e.g. an empty interior on a lattice
        # whose local extent equals the face depth)
        from ..device.memmodel import KernelCost

        return KernelCost(time_s=0.0, bandwidth_bytes_s=0.0,
                          mem_time_s=0.0, flop_time_s=0.0,
                          bytes_moved=0, flops=0)
    # -- AST lint: surface data hazards before any kernel is built ------
    mode = verify_mode()
    check_assignment(dest, expr, subset=subset, mode=mode)
    temps: list = []
    expr = _normalize(expr, dest, ctx, temps)
    # type errors must surface at the assignment site, not at the
    # (possibly much later) deferred launch
    _check_assign_types(dest.spec, expr)
    ctx.stats.expressions_evaluated += 1

    if ctx.fusion.enabled:
        return ctx.fusion.enqueue(dest, expr, subset, temps)

    cost = _launch_statement(dest, expr, subset, ctx)
    for t in temps:
        ctx.field_cache.release(t)
    return cost


def _launch_statement(dest, expr: Expr, subset, ctx: Context) -> KernelCost:
    """Compile (or hit the module cache) and launch one statement.

    The pre-fusion eager path, byte-for-byte: single-statement fusion
    groups also drain through here, so their kernels, cache keys and
    modeled costs are identical under ``REPRO_FUSION=on`` and ``off``.
    """
    lattice = dest.lattice
    mode = verify_mode()
    slots = SlotAssigner()
    sig = expr.signature(slots)
    subset_mode = not subset.is_full
    key = f"{sig}->{_spec_sig(dest.spec)}|{'sub' if subset_mode else 'full'}"

    env = _analysis_env(lattice, subset, subset_mode, slots, dest.spec)

    entry = ctx.module_cache.lookup(key)
    if entry is None:
        name = "eval_" + hashlib.sha256(key.encode()).hexdigest()[:12]
        module, plan = build_expression_kernel(name, expr, dest.spec,
                                               subset_mode)
        module = prepare_module(module, stats=ctx.stats.ir)
        if mode != "off":
            verify(module, env=env)
        compiled, was_cached = ctx.kernel_cache.get_or_compile(module.render())
        if not was_cached:
            ctx.device.charge_jit(compiled.modeled_compile_seconds)
            ctx.stats.kernels_generated += 1
        entry = (module, plan, compiled)
        ctx.module_cache[key] = entry
    module, plan, compiled = entry
    prev = ctx.analysis_envs.get(module.name)
    ctx.analysis_envs[module.name] = (env if prev is None
                                      else merge_envs(prev, env))

    # -- automated memory management: page in the AST's leaves ----------
    fields = slots.fields
    reads = {f.uid for f in fields}
    write_only = ({dest.uid}
                  if (not subset_mode and dest.uid not in reads) else set())
    addrs = ctx.field_cache.make_available([dest] + fields,
                                           write_only=write_only)

    # -- parameter binding -------------------------------------------------
    params: dict[str, object] = {
        "p_lo": lattice.nsites,
        "p_n": len(subset),
        "p_dst": addrs[dest.uid],
    }
    if subset_mode:
        params["p_stab"] = ctx.upload_table(
            ("subset", lattice.dims, subset.name), subset.sites)
    # NB: bind shift tables from *this* walk's slots, not the cached
    # plan — the kernel text is direction-independent (the gather table
    # is a parameter), so one compiled kernel serves every (mu, sign).
    for i, (mu, sign) in enumerate(slots.shifts):
        table = _shift_table(ctx, lattice, mu, sign)
        params[f"p_sh{i}"] = table
    for i, f in enumerate(fields):
        params[f"p_f{i}"] = addrs[f.uid]
    for i, sn in enumerate(slots.scalar_slots):
        params[f"p_s{i}_re"] = sn.value.real
        if plan.scalar_complex[i]:
            params[f"p_s{i}_im"] = sn.value.imag

    # -- launch ---------------------------------------------------------------
    precision = dest.spec.precision
    n_active = len(subset)
    if ctx.autotuner is not None:
        cost = ctx.autotuner.launch(compiled, module.info, params, n_active,
                                    precision=precision)
    else:
        cost = ctx.device.launch(compiled, module.info, params, n_active,
                                 block_size=ctx.default_block_size,
                                 precision=precision)
    ctx.field_cache.mark_device_dirty(dest)
    return cost


def _analysis_env(lattice, subset, subset_mode: bool, slots,
                  dest_spec) -> KernelEnv:
    """Launch-time facts for the abstract-interpretation verifier:
    what the parameter binding below will actually provide — exact
    site counts, field view sizes, and the content range / bulk
    stride of every gather table."""
    nsites = lattice.nsites
    regions = {
        "p_dst": MemRegion("p_dst", nsites * dest_spec.bytes_per_site)}
    for i, f in enumerate(slots.fields):
        regions[f"p_f{i}"] = MemRegion(f"p_f{i}",
                                       nsites * f.spec.bytes_per_site)
    for i, (mu, sign) in enumerate(slots.shifts):
        regions[f"p_sh{i}"] = table_region(f"p_sh{i}",
                                           lattice.shift_map(mu, sign))
    if subset_mode:
        regions["p_stab"] = table_region("p_stab", subset.sites)
    return KernelEnv(scalars={"p_lo": nsites, "p_n": len(subset)},
                     regions=regions)


def _shift_table(ctx: Context, lattice, mu: int, sign: int) -> int:
    """Device address of the gather table for shift (mu, sign).

    The context may carry a comm handler that substitutes tables whose
    boundary entries point at received halo data; single-rank runs use
    the periodic wrap-around table.
    """
    provider = getattr(ctx, "shift_table_provider", None)
    if provider is not None:
        return provider(lattice, mu, sign)
    return ctx.upload_table(("shift", lattice.dims, mu, sign),
                            lattice.shift_map(mu, sign))

"""The AST unparser / PTX code generator (paper Sec. III-C/D).

Walking the expression AST in depth-first order, the unparser emits —
through :class:`~repro.ptx.builder.KernelBuilder` — the PTX program
that evaluates the expression at one site per thread.  The inner
(spin/color/complex) index spaces are unrolled at generation time,
exactly as the C++ template recursion unrolls them in QDP-JIT; the
loop over the site index becomes CUDA thread parallelism.

JIT data views (paper Sec. III-B) appear here as the address
computation ``base + (word_index * I_V + i_V) * word_bytes`` derived
from the coalesced SoA layout function; ``i_V`` is the thread's site,
possibly indirected through a shift gather table or a subset site
table.

Complex arithmetic is expanded into real mul/sub/fma instructions with
the operation counts the paper's Table II assumes (a complex multiply
is 6 flops, an add 2); constant spin matrices fold zeros and +/-1,
+/-i structurally so spin projectors cost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from ..ptx.builder import KernelBuilder
from ..ptx.isa import Immediate, Operand, PTXType, Register
from ..ptx.module import PTXModule
from .expr import (
    BinaryNode,
    ConstSpinMatrix,
    CustomOpNode,
    Expr,
    ExprTypeError,
    FieldRef,
    ScalarLit,
    ScalarParam,
    ShiftNode,
    SlotAssigner,
    TraceNode,
    UnaryNode,
    _level_mul_pairs,
)

if TYPE_CHECKING:  # avoid importing the qdp package at module load
    from ..qdp.typesys import TypeSpec

_FT = {"f32": PTXType.F32, "f64": PTXType.F64}


class CodegenError(Exception):
    """The unparser met an expression it cannot lower."""


@dataclass
class CVal:
    """A complex (or real) value during code generation.

    Either ``const`` holds an exact compile-time complex value, or
    ``re``/``im`` hold operands (``im is None`` for real values).
    """

    re: Operand | None = None
    im: Operand | None = None
    const: complex | None = None

    @property
    def is_const(self) -> bool:
        return self.const is not None

    @property
    def is_real(self) -> bool:
        if self.is_const:
            return self.const.imag == 0.0
        return self.im is None


def _op_type(op: Operand) -> PTXType | None:
    if isinstance(op, (Register, Immediate)):
        return op.type
    return None


def _val_type(v: CVal) -> PTXType | None:
    if v.is_const:
        return None
    t = _op_type(v.re)
    if t is None and v.im is not None:
        t = _op_type(v.im)
    return t


def _common_type(a: CVal, b: CVal, default: PTXType) -> PTXType:
    from ..ptx.builder import promote

    ta, tb = _val_type(a), _val_type(b)
    if ta is None and tb is None:
        return default
    if ta is None:
        return tb
    if tb is None:
        return ta
    return promote(ta, tb)


class ComplexOps:
    """Complex arithmetic on CVals, emitting PTX via a builder."""

    def __init__(self, kb: KernelBuilder, default_type: PTXType):
        self.kb = kb
        self.default_type = default_type

    def _materialize(self, v: CVal, t: PTXType) -> CVal:
        """Turn a constant CVal into immediates of type ``t``."""
        if not v.is_const:
            return v
        re = Immediate(t, v.const.real)
        im = None if v.const.imag == 0.0 else Immediate(t, v.const.imag)
        return CVal(re=re, im=im)

    def neg(self, v: CVal) -> CVal:
        if v.is_const:
            return CVal(const=-v.const)
        kb = self.kb
        re = kb.neg(v.re)
        im = None if v.im is None else kb.neg(v.im)
        return CVal(re=re, im=im)

    def conj(self, v: CVal) -> CVal:
        if v.is_const:
            return CVal(const=v.const.conjugate())
        if v.im is None:
            return v
        return CVal(re=v.re, im=self.kb.neg(v.im))

    def timesI(self, v: CVal) -> CVal:
        """(a+bi) * i = -b + ai — a pure component rotation."""
        if v.is_const:
            return CVal(const=v.const * 1j)
        if v.im is None:
            zero = Immediate(_op_type(v.re) or self.default_type, 0.0)
            return CVal(re=zero, im=v.re)
        return CVal(re=self.kb.neg(v.im), im=v.re)

    def timesMinusI(self, v: CVal) -> CVal:
        if v.is_const:
            return CVal(const=v.const * -1j)
        if v.im is None:
            zero = Immediate(_op_type(v.re) or self.default_type, 0.0)
            return CVal(re=zero, im=self.kb.neg(v.re))
        return CVal(re=v.im, im=self.kb.neg(v.re))

    def add(self, a: CVal, b: CVal) -> CVal:
        return self._addsub(a, b, sub=False)

    def sub(self, a: CVal, b: CVal) -> CVal:
        return self._addsub(a, b, sub=True)

    def _addsub(self, a: CVal, b: CVal, sub: bool) -> CVal:
        if a.is_const and b.is_const:
            return CVal(const=a.const - b.const if sub else a.const + b.const)
        if a.is_const and a.const == 0 and not sub:
            return b
        if b.is_const and b.const == 0:
            return a
        t = _common_type(a, b, self.default_type)
        a = self._materialize(a, t)
        b = self._materialize(b, t)
        kb = self.kb
        op = kb.sub if sub else kb.add
        re = op(a.re, b.re, t)
        if a.im is None and b.im is None:
            return CVal(re=re)
        ai = a.im if a.im is not None else Immediate(t, 0.0)
        bi = b.im if b.im is not None else Immediate(t, 0.0)
        return CVal(re=re, im=op(ai, bi, t))

    def mul(self, a: CVal, b: CVal) -> CVal:
        # constant folding (spin projectors etc.)
        if a.is_const and b.is_const:
            return CVal(const=a.const * b.const)
        for c, x in ((a, b), (b, a)):
            if c.is_const:
                v = c.const
                if v == 0:
                    return CVal(const=0j)
                if v == 1:
                    return x
                if v == -1:
                    return self.neg(x)
                if v == 1j:
                    return self.timesI(x)
                if v == -1j:
                    return self.timesMinusI(x)
        t = _common_type(a, b, self.default_type)
        a = self._materialize(a, t)
        b = self._materialize(b, t)
        kb = self.kb
        if a.im is None and b.im is None:
            return CVal(re=kb.mul(a.re, b.re, t))
        if a.im is None:
            return CVal(re=kb.mul(a.re, b.re, t), im=kb.mul(a.re, b.im, t))
        if b.im is None:
            return CVal(re=kb.mul(a.re, b.re, t), im=kb.mul(a.im, b.re, t))
        # full complex multiply: 6 flops (paper Table II counting)
        t1 = kb.mul(a.re, b.re, t)
        t2 = kb.mul(a.im, b.im, t)
        re = kb.sub(t1, t2, t)
        t3 = kb.mul(a.re, b.im, t)
        im = kb.fma(a.im, b.re, t3, t)
        return CVal(re=re, im=im)

    def mul_conj(self, a: CVal, b: CVal) -> CVal:
        """conj(a) * b with the conjugation folded into the sign
        pattern — same 6 flops as a plain complex multiply, no ``neg``
        instructions (this is how hand-written kernels do it, and what
        the paper's Table II flop counts assume)."""
        if a.is_const:
            return self.mul(CVal(const=a.const.conjugate()), b)
        if a.im is None:
            return self.mul(a, b)
        if b.is_const or b.im is None:
            return self.mul(self.conj(a), b)
        t = _common_type(a, b, self.default_type)
        a = self._materialize(a, t)
        b = self._materialize(b, t)
        kb = self.kb
        # re = ar*br + ai*bi ; im = ar*bi - ai*br
        t1 = kb.mul(a.re, b.re, t)
        re = kb.fma(a.im, b.im, t1, t)
        t2 = kb.mul(a.im, b.re, t)
        t3 = kb.mul(a.re, b.im, t)
        im = kb.sub(t3, t2, t)
        return CVal(re=re, im=im)


class Unparser:
    """Walks one expression AST and emits its evaluation kernel.

    One instance per generated kernel; carries the per-kernel state:
    base-pointer registers per leaf slot, site registers per shift
    view, cached component loads per (leaf node, view, word).

    In *fused* mode (multi-statement kernels) three extra mechanisms
    activate, none of which change the arithmetic producing any stored
    value:

    * loads dedup per **field** (uid) instead of per AST node — two
      statements reading the same field share one set of loads;
    * a common-subexpression memo keyed by structural signature,
      component and a per-field *write epoch* reuses whole subtree
      values across statements (registers are SSA, so reuse is safe;
      the epoch key invalidates values that read a field a later
      statement overwrote);
    * destination *forwarding*: once a statement's stores are emitted,
      plain (unshifted) reads of that destination by later statements
      in the same kernel resolve to the stored register values —
      bitwise what a memory round-trip would load, without the loads.
    """

    def __init__(self, kb: KernelBuilder, slots: SlotAssigner,
                 dest_spec: TypeSpec, subset_mode: bool,
                 fused: bool = False):
        self.kb = kb
        self.slots = slots
        self.dest_spec = dest_spec
        self.subset_mode = subset_mode
        self.fused = fused
        self.ops = ComplexOps(kb, _FT[dest_spec.precision])
        # filled by build():
        self.nsites_reg = None
        self.site_reg = None           # s32 site index (identity view)
        self._view_sites: dict[int | None, Register] = {}
        self._site_bytes: dict[tuple[int | None, int], Register] = {}
        self._nsites_bytes: dict[int, Register] = {}
        self._leaf_bases: list[Register] = []
        self._shift_bases: list[Register] = []
        self._scalar_vals: list[CVal] = []
        self._load_cache: dict[tuple, CVal] = {}
        # fused-mode state (see class docstring)
        self._forward: dict[tuple, CVal] = {}
        self._pending_forward: dict[tuple, CVal] = {}
        self._cse: dict[tuple, CVal] = {}
        self._epoch: dict[int, int] = {}
        self._sig_cache: dict[int, str] = {}
        self._uids_cache: dict[int, tuple] = {}

    # -- fused-mode bookkeeping ------------------------------------------

    def _sig(self, node: Expr) -> str:
        """Structural signature of a subtree (slot-stable: every slot
        was assigned during the pre-walk, so this is a pure lookup)."""
        s = self._sig_cache.get(id(node))
        if s is None:
            s = node.signature(self.slots)
            self._sig_cache[id(node)] = s
        return s

    def _uids(self, node: Expr) -> tuple:
        u = self._uids_cache.get(id(node))
        if u is None:
            acc: set[int] = set()
            _collect_uids(node, acc)
            u = tuple(sorted(acc))
            self._uids_cache[id(node)] = u
        return u

    def _epoch_key(self, node: Expr) -> tuple:
        return tuple(self._epoch.get(u, 0) for u in self._uids(node))

    def stage_forward(self, uid: int, sidx: tuple, cidx: tuple,
                      val: CVal) -> None:
        """Record a stored destination component for later statements.

        Staged, not live: reads *within* the storing statement must
        still see the old values (exactly as the eager kernel's cached
        loads do); :meth:`end_statement` activates the staged set.
        """
        self._pending_forward[(uid, sidx, cidx)] = val

    def end_statement(self, uid: int) -> None:
        self._forward.update(self._pending_forward)
        self._pending_forward.clear()
        self._epoch[uid] = self._epoch.get(uid, 0) + 1

    # -- address helpers (JIT data views) --------------------------------

    def _nsites_bytes_reg(self, word_bytes: int) -> Register:
        r = self._nsites_bytes.get(word_bytes)
        if r is None:
            kb = self.kb
            ns64 = kb.cvt(self.nsites_reg, PTXType.S64)
            r = kb.mul(ns64, kb.imm(word_bytes, PTXType.S64))
            self._nsites_bytes[word_bytes] = r
        return r

    def _view_site_reg(self, view: int | None) -> Register:
        """The (possibly shift-indirected) site index for a view."""
        r = self._view_sites.get(view)
        if r is None:
            assert view is not None
            kb = self.kb
            base = self._shift_bases[view]
            s64 = kb.cvt(self.site_reg, PTXType.S64)
            off = kb.mul(s64, kb.imm(4, PTXType.S64))
            addr = kb.add(base, kb.cvt(off, PTXType.U64))
            r = kb.ld_global(addr, PTXType.S32)
            self._view_sites[view] = r
        return r

    def _site_bytes_reg(self, view: int | None, word_bytes: int) -> Register:
        key = (view, word_bytes)
        r = self._site_bytes.get(key)
        if r is None:
            kb = self.kb
            s64 = kb.cvt(self._view_site_reg(view), PTXType.S64)
            r = kb.mul(s64, kb.imm(word_bytes, PTXType.S64))
            self._site_bytes[key] = r
        return r

    def load_component(self, node: FieldRef, view: int | None,
                       sidx: tuple, cidx: tuple) -> CVal:
        """Emit the loads for one (spin, color) component of a leaf.

        Loads are cached per (leaf node, view, word): within one AST
        node each memory word is loaded once, but distinct references
        to the same field load again — matching the paper's byte
        accounting for Table II (``matvec`` counts U1 twice).
        """
        spec = node.spec
        slot = self.slots.field_slot(node.field)
        ft = _FT[spec.precision]
        wb = spec.word_bytes
        parts = []
        # fused kernels dedup loads per *field*: two statements reading
        # the same word share it.  Eager kernels keep per-node caching
        # so distinct references load again (Table II byte accounting).
        leaf_key = node.field.uid if self.fused else id(node)
        for ir in range(spec.reality_size):
            w = spec.word_index(sidx, cidx, ir)
            key = (leaf_key, view, w)
            cached = self._load_cache.get(key)
            if cached is None:
                kb = self.kb
                nsb = self._nsites_bytes_reg(wb)
                sb = self._site_bytes_reg(view, wb)
                off = kb.fma(nsb, kb.imm(w, PTXType.S64), sb, PTXType.S64)
                addr = kb.add(self._leaf_bases[slot], kb.cvt(off, PTXType.U64))
                cached = kb.ld_global(addr, ft)
                self._load_cache[key] = cached
            parts.append(cached)
        if spec.is_complex:
            return CVal(re=parts[0], im=parts[1])
        return CVal(re=parts[0])

    # -- AST walk ------------------------------------------------------------

    def gen(self, node: Expr, sidx: tuple, cidx: tuple,
            view: int | None = None, conjugate: bool = False) -> CVal:
        """Generate the value of component (sidx, cidx) of ``node``.

        ``view`` is the shift view the enclosing ShiftNode established;
        ``conjugate``/index reversal for ``adj`` are pushed down to the
        leaves structurally (zero-cost where possible).

        In fused mode this is the CSE entry point: structurally equal
        subtrees at the same component/view/conjugation — with no
        intervening write to any field they read — return the value
        already computed (registers are SSA, so reuse is sound).
        """
        if self.fused and not isinstance(node, (ScalarLit, ScalarParam,
                                                ConstSpinMatrix)):
            key = (self._sig(node), view, sidx, cidx, conjugate,
                   self._epoch_key(node))
            hit = self._cse.get(key)
            if hit is not None:
                return hit
            val = self._gen(node, sidx, cidx, view, conjugate)
            self._cse[key] = val
            return val
        return self._gen(node, sidx, cidx, view, conjugate)

    def _gen(self, node: Expr, sidx: tuple, cidx: tuple,
             view: int | None = None, conjugate: bool = False) -> CVal:
        ops = self.ops
        if isinstance(node, FieldRef):
            if self.fused and view is None:
                fwd = self._forward.get((node.field.uid, sidx, cidx))
                if fwd is not None:
                    return ops.conj(fwd) if conjugate else fwd
            v = self.load_component(node, view, sidx, cidx)
            return ops.conj(v) if conjugate else v
        if isinstance(node, ScalarLit):
            c = node.value.conjugate() if conjugate else node.value
            return CVal(const=c)
        if isinstance(node, ScalarParam):
            v = self._scalar_vals[self.slots.scalar_slot(node)]
            return ops.conj(v) if conjugate else v
        if isinstance(node, ConstSpinMatrix):
            entry = complex(node.matrix[sidx])
            if conjugate:
                entry = entry.conjugate()
            return CVal(const=entry)
        if isinstance(node, ShiftNode):
            if view is not None:
                raise CodegenError(
                    "nested shifts must be materialized before codegen")
            child = node.child
            if not isinstance(child, FieldRef):
                raise CodegenError(
                    "shift of a non-leaf must be materialized before codegen")
            sl = self.slots.shift_slot(node.mu, node.sign)
            return self.gen(child, sidx, cidx, view=sl, conjugate=conjugate)
        if isinstance(node, UnaryNode):
            op = node.op
            if op == "neg":
                return ops.neg(self.gen(node.child, sidx, cidx, view,
                                        conjugate))
            if op == "conj":
                return self.gen(node.child, sidx, cidx, view, not conjugate)
            if op in ("adj", "transpose"):
                csidx = sidx[::-1] if len(sidx) == 2 else sidx
                ccidx = cidx[::-1] if len(cidx) == 2 else cidx
                flip = (op == "adj")
                return self.gen(node.child, csidx, ccidx, view,
                                conjugate ^ flip)
            if op == "timesI":
                v = self.gen(node.child, sidx, cidx, view, conjugate)
                return ops.timesMinusI(v) if conjugate else ops.timesI(v)
            if op == "timesMinusI":
                v = self.gen(node.child, sidx, cidx, view, conjugate)
                return ops.timesI(v) if conjugate else ops.timesMinusI(v)
            if op == "real":
                v = self.gen(node.child, sidx, cidx, view, False)
                if v.is_const:
                    return CVal(const=complex(v.const.real))
                return CVal(re=v.re)
            if op == "imag":
                v = self.gen(node.child, sidx, cidx, view, False)
                if v.is_const:
                    return CVal(const=complex(v.const.imag))
                if v.im is None:
                    return CVal(const=0j)
                return CVal(re=v.im)
            from .fastmath import MATH_EMITTERS

            emitter = MATH_EMITTERS.get(op)
            if emitter is not None:
                v = self.gen(node.child, sidx, cidx, view, False)
                ft = _FT[node.spec.precision]
                v = self.ops._materialize(v, ft)
                if v.im is not None:
                    raise CodegenError(f"{op} applied to a complex value")
                x = self.kb._coerce(v.re, ft)
                return CVal(re=emitter(self.kb, x, ft))
            raise CodegenError(f"unknown unary op {op!r}")
        if isinstance(node, TraceNode):
            child = node.child
            trace_spin = (node.which in ("spin", "both")
                          and len(child.spec.spin) == 2)
            trace_color = (node.which in ("color", "both")
                           and len(child.spec.color) == 2)
            spins = ([(k, k) for k in range(child.spec.spin[0])]
                     if trace_spin else [sidx])
            colors = ([(k, k) for k in range(child.spec.color[0])]
                      if trace_color else [cidx])
            acc = None
            for sp in spins:
                for co in colors:
                    t = self.gen(child, sp, co, view, conjugate)
                    acc = t if acc is None else ops.add(acc, t)
            return acc
        if isinstance(node, BinaryNode):
            if node.op in ("add", "sub"):
                a = self.gen(node.left, sidx, cidx, view, conjugate)
                b = self.gen(node.right, sidx, cidx, view, conjugate)
                return ops.add(a, b) if node.op == "add" else ops.sub(a, b)
            # multiplication with level-wise contraction
            l, r = node.left, node.right
            if conjugate:
                # conj(a*b) = conj(a)*conj(b) (elementwise conj; note adj
                # is handled by index reversal above, so plain conj here)
                pass
            spin_pairs = _level_mul_pairs(l.spec.spin, r.spec.spin, sidx)
            color_pairs = _level_mul_pairs(l.spec.color, r.spec.color, cidx)
            acc = None
            for ls, rs in spin_pairs:
                for lc, rc in color_pairs:
                    a = self.gen(l, ls, lc, view, conjugate)
                    b = self.gen(r, rs, rc, view, conjugate)
                    t = ops.mul(a, b)
                    acc = t if acc is None else ops.add(acc, t)
            return acc
        if isinstance(node, CustomOpNode):
            return node.gen(self, node, sidx, cidx, view, conjugate)
        from .expr import PowNode

        if isinstance(node, PowNode):
            from .fastmath import emit_pow

            v = self.gen(node.child, sidx, cidx, view, False)
            ft = _FT[node.spec.precision]
            v = self.ops._materialize(v, ft)
            if v.im is not None:
                raise CodegenError("pow applied to a complex value")
            x = self.kb._coerce(v.re, ft)
            return CVal(re=emit_pow(self.kb, x, node.exponent, ft))
        raise CodegenError(f"cannot unparse node {type(node).__name__}")


def _collect_uids(node: Expr, acc: set) -> None:
    if isinstance(node, FieldRef):
        acc.add(node.field.uid)
    for c in node.children():
        _collect_uids(c, acc)


def emit_reduction_partials(up: Unparser, kind: str, exprs,
                            out_re_base, out_im_base, gid) -> None:
    """Emit the per-thread partial of a reduction and its store(s).

    Shared by the standalone partials kernel
    (:func:`repro.core.reduction._build_reduction_kernel`) and by
    fused kernels that absorb a reduction behind their stores.  The
    accumulation always happens in f64 and the partial lands at
    ``out + gid*8``, so absorbed and standalone partials are bitwise
    identical.
    """
    kb = up.kb
    ops = up.ops
    spec = exprs[0].spec
    acc = None
    if kind == "norm2":
        (expr,) = exprs
        for sidx in spec.spin_indices():
            for cidx in spec.color_indices():
                v = up.gen(expr, sidx, cidx)
                v = ops._materialize(v, PTXType.F64)
                # |z|^2 = re^2 + im^2, accumulated with fma
                t = (kb.fma(v.re, v.re, acc, PTXType.F64) if acc is not None
                     else kb.mul(v.re, v.re, PTXType.F64))
                acc = t
                if v.im is not None:
                    acc = kb.fma(v.im, v.im, acc, PTXType.F64)
        acc = CVal(re=acc)
    elif kind == "sum":
        (expr,) = exprs
        acc = up.gen(expr, (), ())
    elif kind == "inner":
        a, b = exprs
        for sidx in spec.spin_indices():
            for cidx in spec.color_indices():
                va = up.gen(a, sidx, cidx)
                vb = up.gen(b, sidx, cidx)
                t = ops.mul_conj(va, vb)
                acc = t if acc is None else ops.add(acc, t)
    else:
        raise CodegenError(f"unknown reduction kind {kind!r}")

    acc = ops._materialize(acc, PTXType.F64)
    # store partial at out + gid*8
    g64 = kb.cvt(gid, PTXType.S64)
    off = kb.cvt(kb.mul(g64, kb.imm(8, PTXType.S64)), PTXType.U64)
    kb.st_global(kb.add(out_re_base, off), acc.re, PTXType.F64)
    if out_im_base is not None:
        im_operand = acc.im if acc.im is not None else Immediate(
            PTXType.F64, 0.0)
        kb.st_global(kb.add(out_im_base, off), im_operand, PTXType.F64)


@dataclass
class KernelPlan:
    """How to bind runtime values to the generated kernel's parameters.

    ``shifts`` lists (mu, sign) per shift-table parameter; ``n_fields``
    leaf pointers follow the destination pointer; scalars are listed
    with their complexity.  The evaluator re-walks a structurally
    identical expression with a fresh :class:`SlotAssigner` to recover
    the actual fields/values in the same order.
    """

    subset_mode: bool
    shifts: list[tuple[int, int]]
    n_fields: int
    scalar_complex: list[bool]
    scalar_precisions: list[str]
    dest_spec: TypeSpec


def build_expression_kernel(name: str, expr: Expr, dest_spec: TypeSpec,
                            subset_mode: bool) -> tuple[PTXModule, KernelPlan]:
    """Generate the PTX kernel evaluating ``dest = expr``.

    The kernel is volume-parametric (the layout stride I_V is a
    parameter), so one compiled kernel serves every lattice size.
    """
    if dest_spec.is_complex is False:
        # real destination: the expression must be real
        if expr.spec.is_complex:
            raise ExprTypeError(
                f"cannot assign complex expression to real destination; "
                f"use real()/imag()")
    if expr.spec.spin != dest_spec.spin or expr.spec.color != dest_spec.color:
        raise ExprTypeError(
            f"shape mismatch in assignment: expression "
            f"spin={expr.spec.spin} color={expr.spec.color}, destination "
            f"spin={dest_spec.spin} color={dest_spec.color}")

    kb = KernelBuilder(name)
    slots = SlotAssigner()
    # pre-walk to discover slots in signature order
    expr.signature(slots)

    # --- parameters (fixed order; see KernelPlan) ---
    p_lo = kb.add_param("p_lo", PTXType.S32)
    p_n = kb.add_param("p_n", PTXType.S32)
    p_stab = kb.add_param("p_stab", PTXType.U64, is_pointer=True) \
        if subset_mode else None
    p_shifts = [kb.add_param(f"p_sh{i}", PTXType.U64, is_pointer=True)
                for i in range(len(slots.shifts))]
    p_dst = kb.add_param("p_dst", PTXType.U64, is_pointer=True)
    p_fields = [kb.add_param(f"p_f{i}", PTXType.U64, is_pointer=True)
                for i in range(len(slots.fields))]
    scalar_params = []
    for i, sn in enumerate(slots.scalar_slots):
        ft = _FT[sn.spec.precision]
        pre = kb.add_param(f"p_s{i}_re", ft)
        pim = kb.add_param(f"p_s{i}_im", ft) if sn.spec.is_complex else None
        scalar_params.append((pre, pim))

    up = Unparser(kb, slots, dest_spec, subset_mode)

    # --- preamble ---
    up.nsites_reg = kb.ld_param(p_lo)
    n_active = kb.ld_param(p_n)
    stab_base = kb.ld_param(p_stab) if subset_mode else None
    up._shift_bases = [kb.ld_param(p) for p in p_shifts]
    dst_base = kb.ld_param(p_dst)
    up._leaf_bases = [kb.ld_param(p) for p in p_fields]
    for (pre, pim) in scalar_params:
        re = kb.ld_param(pre)
        im = kb.ld_param(pim) if pim is not None else None
        up._scalar_vals.append(CVal(re=re, im=im))

    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n_active)
    exit_lbl = kb.new_label("EXIT")
    kb.bra(exit_lbl, guard=oob)

    if subset_mode:
        g64 = kb.cvt(gid, PTXType.S64)
        off = kb.mul(g64, kb.imm(4, PTXType.S64))
        addr = kb.add(stab_base, kb.cvt(off, PTXType.U64))
        up.site_reg = kb.ld_global(addr, PTXType.S32)
    else:
        up.site_reg = gid
    up._view_sites[None] = up.site_reg

    # --- body: one store per destination word ---
    ft = _FT[dest_spec.precision]
    wb = dest_spec.word_bytes
    nsb = up._nsites_bytes_reg(wb)
    sb = up._site_bytes_reg(None, wb)
    ops = up.ops
    for sidx in dest_spec.spin_indices():
        for cidx in dest_spec.color_indices():
            val = up.gen(expr, sidx, cidx)
            val = ops._materialize(val, ft)
            comps = [(0, val.re)]
            if dest_spec.is_complex:
                comps.append((1, val.im if val.im is not None
                              else Immediate(ft, 0.0)))
            elif val.im is not None:
                raise ExprTypeError(
                    "complex value assigned to real destination")
            for ir, operand in comps:
                w = dest_spec.word_index(sidx, cidx, ir)
                off = kb.fma(nsb, kb.imm(w, PTXType.S64), sb, PTXType.S64)
                addr = kb.add(dst_base, kb.cvt(off, PTXType.U64))
                kb.st_global(addr, operand, ft)

    kb.label(exit_lbl)
    kb.ret()

    module = PTXModule.from_builder(kb)
    plan = KernelPlan(
        subset_mode=subset_mode,
        shifts=list(slots.shifts),
        n_fields=len(slots.fields),
        scalar_complex=[sn.spec.is_complex for sn in slots.scalar_slots],
        scalar_precisions=[sn.spec.precision for sn in slots.scalar_slots],
        dest_spec=dest_spec,
    )
    return module, plan


def _check_assign_types(dest_spec: TypeSpec, expr: Expr) -> None:
    if dest_spec.is_complex is False and expr.spec.is_complex:
        raise ExprTypeError(
            "cannot assign complex expression to real destination; "
            "use real()/imag()")
    if expr.spec.spin != dest_spec.spin or expr.spec.color != dest_spec.color:
        raise ExprTypeError(
            f"shape mismatch in assignment: expression "
            f"spin={expr.spec.spin} color={expr.spec.color}, destination "
            f"spin={dest_spec.spin} color={dest_spec.color}")


def build_fused_kernel(name: str, assigns, reduction,
                       subset_mode: bool) -> PTXModule:
    """Generate one multi-output kernel for a fused statement group.

    ``assigns`` is an ordered list of ``(dest_field, expr)`` pairs
    (normalized ASTs); ``reduction`` is an optional trailing
    ``(kind, exprs)`` whose per-thread partials the kernel also
    writes.  Statement order is preserved per thread, destinations are
    addressed through their own field slot (so the structural cache
    key fully determines the code), and the fused :class:`Unparser`
    mode supplies load dedup, CSE and destination forwarding.
    """
    kb = KernelBuilder(name)
    slots = SlotAssigner()
    # pre-walk in the exact order the launcher re-walks for binding:
    # each statement's expression, then its destination's slot, then
    # the reduction operands
    for dest, expr in assigns:
        _check_assign_types(dest.spec, expr)
        expr.signature(slots)
        slots.field_slot(dest)
    if reduction is not None:
        for e in reduction[1]:
            e.signature(slots)

    # --- parameters (bound by name at launch) ---
    p_lo = kb.add_param("p_lo", PTXType.S32)
    p_n = kb.add_param("p_n", PTXType.S32)
    p_stab = (kb.add_param("p_stab", PTXType.U64, is_pointer=True)
              if subset_mode else None)
    p_shifts = [kb.add_param(f"p_sh{i}", PTXType.U64, is_pointer=True)
                for i in range(len(slots.shifts))]
    p_out_re = p_out_im = None
    if reduction is not None:
        p_out_re = kb.add_param("p_out_re", PTXType.U64, is_pointer=True)
        if reduction[0] in ("sum", "inner"):
            p_out_im = kb.add_param("p_out_im", PTXType.U64, is_pointer=True)
    p_fields = [kb.add_param(f"p_f{i}", PTXType.U64, is_pointer=True)
                for i in range(len(slots.fields))]
    scalar_params = []
    for i, sn in enumerate(slots.scalar_slots):
        ft = _FT[sn.spec.precision]
        pre = kb.add_param(f"p_s{i}_re", ft)
        pim = kb.add_param(f"p_s{i}_im", ft) if sn.spec.is_complex else None
        scalar_params.append((pre, pim))

    # the scheduler only groups statements of one destination
    # precision, so the ComplexOps default type matches what each
    # statement's eager kernel would use
    up = Unparser(kb, slots, assigns[0][0].spec, subset_mode, fused=True)

    # --- preamble ---
    up.nsites_reg = kb.ld_param(p_lo)
    n_active = kb.ld_param(p_n)
    stab_base = kb.ld_param(p_stab) if subset_mode else None
    up._shift_bases = [kb.ld_param(p) for p in p_shifts]
    out_re_base = kb.ld_param(p_out_re) if p_out_re is not None else None
    out_im_base = kb.ld_param(p_out_im) if p_out_im is not None else None
    up._leaf_bases = [kb.ld_param(p) for p in p_fields]
    for (pre, pim) in scalar_params:
        re = kb.ld_param(pre)
        im = kb.ld_param(pim) if pim is not None else None
        up._scalar_vals.append(CVal(re=re, im=im))

    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n_active)
    exit_lbl = kb.new_label("EXIT")
    kb.bra(exit_lbl, guard=oob)

    if subset_mode:
        g64 = kb.cvt(gid, PTXType.S64)
        off = kb.mul(g64, kb.imm(4, PTXType.S64))
        addr = kb.add(stab_base, kb.cvt(off, PTXType.U64))
        up.site_reg = kb.ld_global(addr, PTXType.S32)
    else:
        up.site_reg = gid
    up._view_sites[None] = up.site_reg

    # --- body: statements in order, one store per destination word ---
    ops = up.ops
    for dest, expr in assigns:
        dspec = dest.spec
        ft = _FT[dspec.precision]
        wb = dspec.word_bytes
        nsb = up._nsites_bytes_reg(wb)
        sb = up._site_bytes_reg(None, wb)
        dst_base = up._leaf_bases[slots.field_slot(dest)]
        for sidx in dspec.spin_indices():
            for cidx in dspec.color_indices():
                val = up.gen(expr, sidx, cidx)
                val = ops._materialize(val, ft)
                re_op = kb._coerce(val.re, ft)
                comps = [(0, re_op)]
                im_op = None
                if dspec.is_complex:
                    im_op = kb._coerce(val.im if val.im is not None
                                       else Immediate(ft, 0.0), ft)
                    comps.append((1, im_op))
                elif val.im is not None:
                    raise ExprTypeError(
                        "complex value assigned to real destination")
                for ir, operand in comps:
                    w = dspec.word_index(sidx, cidx, ir)
                    off = kb.fma(nsb, kb.imm(w, PTXType.S64), sb,
                                 PTXType.S64)
                    addr = kb.add(dst_base, kb.cvt(off, PTXType.U64))
                    kb.st_global(addr, operand, ft)
                # later statements read these registers instead of
                # re-loading the destination from memory
                up.stage_forward(dest.uid, sidx, cidx,
                                 CVal(re=re_op, im=im_op))
        up.end_statement(dest.uid)

    if reduction is not None:
        emit_reduction_partials(up, reduction[0], reduction[1],
                                out_re_base, out_im_base, gid)

    kb.label(exit_lbl)
    kb.ret()
    return PTXModule.from_builder(kb)

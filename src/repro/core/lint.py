"""Expression-AST lint: data hazards of the site-parallel model.

A QDP expression is compiled to a kernel that runs one thread per
site.  That execution model makes some syntactically valid
expressions hazardous:

``shift-alias``
    ``psi = shift(psi, FORWARD, mu)`` — the destination is read
    through a shifted view.  In a raw site-parallel kernel this is a
    silent read/write race: thread ``x`` writes ``psi(x)`` while
    thread ``x - mu`` is reading it.  (The evaluator defuses the race
    by materializing a temporary copy first, QDP++-style — correct,
    but an extra kernel launch and a full field of traffic.)
``shift-antiparallel``
    The same field shifted both FORWARD and BACKWARD along one axis
    in a single expression: both faces of the axis are needed at
    once, which defeats face buffering in multi-rank runs (both
    halos must be exchanged before the kernel can start anywhere).
    A note, not a warning — stencil operators like dslash are
    antiparallel by construction; the finding makes the comm cost
    visible without flagging correct code.
``lattice-conformance``
    Fields over non-conformant lattices (different shapes), or a
    subset whose site table exceeds the destination lattice — the
    layout function would index out of bounds.
``shift-materialization``
    ``shift`` of a non-leaf expression (or of a shift) is legal but
    is materialized into a temporary before the main kernel — a
    note, so the cost is visible.

:func:`lint_assignment` reports findings as structured
:class:`~repro.diagnostics.Diagnostic` records;
:func:`check_assignment` is the evaluator hook that applies the
``REPRO_VERIFY`` strictness knob.
"""

from __future__ import annotations

from ..diagnostics import Diagnostic, Severity, emit_warnings, errors
from .expr import Expr, FieldRef, ShiftNode

#: Names of the AST lint passes, for reporting.
LINT_PASSES = ("shift-alias", "shift-antiparallel", "lattice-conformance",
               "shift-materialization")


class LintError(Exception):
    """An expression failed AST lint under ``REPRO_VERIFY=error``."""

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


def _walk(node: Expr, under_shift: bool = False):
    """Yield ``(node, under_shift)`` for every node in the tree."""
    yield node, under_shift
    inner = under_shift or isinstance(node, ShiftNode)
    for child in node.children():
        yield from _walk(child, inner)


def _field_name(field) -> str:
    return getattr(field, "name", None) or f"field#{field.uid}"


def lint_assignment(dest, expr: Expr, subset=None,
                    assume_materialization: bool = False
                    ) -> list[Diagnostic]:
    """Lint the assignment ``dest = expr`` (optionally on a subset).

    ``dest`` may be ``None`` to lint a bare expression.  With
    ``assume_materialization`` (the evaluator's view) the
    ``shift-alias`` race is downgraded to a warning, because the
    evaluator copies the aliased field into a temporary before
    launching the site-parallel kernel; without it (the raw-kernel
    view used by ``repro.lint`` and direct callers) it is an error.
    """
    out: list[Diagnostic] = []
    dest_name = _field_name(dest) if dest is not None else ""

    # -- single walk collecting the facts every pass needs ---------------
    shifted_uids: set[int] = set()           # fields read through a shift
    shift_signs: dict[tuple[int, int], set[int]] = {}   # (uid, mu) -> signs
    lattices: dict[int, object] = {}          # field uid -> lattice
    field_names: dict[int, str] = {}
    deep_shifts: list[ShiftNode] = []

    for node, under_shift in _walk(expr):
        if isinstance(node, FieldRef):
            f = node.field
            lattices.setdefault(f.uid, f.lattice)
            field_names.setdefault(f.uid, _field_name(f))
            if under_shift:
                shifted_uids.add(f.uid)
        elif isinstance(node, ShiftNode):
            if not isinstance(node.child, FieldRef):
                deep_shifts.append(node)
            for sub, _ in _walk(node.child):
                if isinstance(sub, FieldRef):
                    key = (sub.field.uid, node.mu)
                    shift_signs.setdefault(key, set()).add(node.sign)

    # -- shift-alias ------------------------------------------------------
    if dest is not None and dest.uid in shifted_uids:
        if assume_materialization:
            sev = Severity.WARNING
            tail = (" — the evaluator materializes a temporary copy "
                    "first (extra kernel launch and field traffic)")
        else:
            sev = Severity.ERROR
            tail = (" — a silent read/write race in a site-parallel "
                    "kernel (thread x writes the word thread x-mu reads)")
        out.append(Diagnostic(
            sev, "shift-alias",
            f"destination '{dest_name}' aliases a shifted operand{tail}",
            obj=dest_name))

    # -- shift-antiparallel ----------------------------------------------
    seen_pairs: set[tuple[int, int]] = set()
    for (uid, mu), signs in sorted(shift_signs.items()):
        if {+1, -1} <= signs and (uid, mu) not in seen_pairs:
            seen_pairs.add((uid, mu))
            out.append(Diagnostic(
                Severity.NOTE, "shift-antiparallel",
                f"field '{field_names[uid]}' is shifted both FORWARD and "
                f"BACKWARD along mu={mu} in one expression — both faces "
                f"are required before any site can start, defeating "
                f"face-buffered comm/compute overlap",
                obj=dest_name))

    # -- lattice-conformance ----------------------------------------------
    all_lattices = dict(lattices)
    if dest is not None:
        all_lattices.setdefault(dest.uid, dest.lattice)
        if dest.uid not in field_names:
            field_names[dest.uid] = dest_name
    ref_uid = dest.uid if dest is not None else (
        min(all_lattices) if all_lattices else None)
    if ref_uid is not None:
        ref_lat = all_lattices[ref_uid]
        for uid, lat in sorted(all_lattices.items()):
            if lat is ref_lat:
                continue
            if getattr(lat, "dims", None) != getattr(ref_lat, "dims", None):
                out.append(Diagnostic(
                    Severity.ERROR, "lattice-conformance",
                    f"field '{field_names[uid]}' lives on lattice "
                    f"{getattr(lat, 'dims', '?')} but "
                    f"'{field_names[ref_uid]}' is on "
                    f"{getattr(ref_lat, 'dims', '?')} — non-conformant "
                    f"operands in one expression",
                    obj=dest_name))
        if subset is not None and dest is not None and len(subset) > 0:
            import numpy as np

            if int(np.max(subset.sites)) >= dest.lattice.nsites:
                out.append(Diagnostic(
                    Severity.ERROR, "lattice-conformance",
                    f"subset '{subset.name}' references site "
                    f"{int(np.max(subset.sites))} beyond the destination "
                    f"lattice ({dest.lattice.nsites} sites)",
                    obj=dest_name))

    # -- shift-materialization --------------------------------------------
    for node in deep_shifts:
        what = ("a nested shift" if isinstance(node.child, ShiftNode)
                else "a non-leaf expression")
        out.append(Diagnostic(
            Severity.NOTE, "shift-materialization",
            f"shift of {what} is materialized into a temporary before "
            f"the main kernel (extra kernel launch and field traffic)",
            obj=dest_name))

    return out


def check_assignment(dest, expr: Expr, subset=None,
                     mode: str = "error") -> list[Diagnostic]:
    """Evaluator hook: lint and apply the strictness ``mode``.

    ``off`` skips the lint; ``warn`` reports everything as Python
    warnings; ``error`` additionally raises :class:`LintError` on
    error-severity findings.  Returns the diagnostics either way.
    """
    if mode == "off":
        return []
    diagnostics = lint_assignment(dest, expr, subset=subset,
                                  assume_materialization=True)
    if not diagnostics:
        return diagnostics
    errs = errors(diagnostics)
    if mode == "error" and errs:
        emit_warnings([d for d in diagnostics if d not in errs])
        raise LintError("\n".join(d.render() for d in errs), diagnostics)
    emit_warnings(diagnostics)
    return diagnostics

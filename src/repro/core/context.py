"""The QDP-JIT context: one device's worth of framework state.

Bundles the simulated device, the driver's compiled-kernel cache, the
generated-PTX module cache, the field software-cache and the
auto-tuner.  A default global context (the single-GPU case) is created
lazily by :func:`qdp_init`; multi-rank runs (the virtual machine in
:mod:`repro.comm`) create one context per rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..device.autotune import Autotuner
from ..device.gpu import Device
from ..device.specs import DeviceSpec, K20X_ECC_OFF
from ..driver.cache import KernelCache
from ..ir.pipeline import IRStats
from ..memory.cache import CacheStats, FieldCache


@dataclass
class ContextStats:
    """High-level counters for one context."""

    expressions_evaluated: int = 0
    kernels_generated: int = 0
    reductions: int = 0
    #: multi-statement fused launches / statements they covered
    fusion_groups: int = 0
    fused_statements: int = 0
    #: generated-module cache outcomes (see :class:`ModuleCache`)
    module_cache_hits: int = 0
    module_cache_misses: int = 0
    #: SSA IR layer counters (``REPRO_IR``; see :mod:`repro.ir.pipeline`)
    ir: IRStats = field(default_factory=IRStats)
    #: backrefs wired by :class:`Context` so timeline/cache figures
    #: read live through ``ctx.stats`` (not copied counters)
    _runtime: object = field(default=None, repr=False, compare=False)
    _field_cache: object = field(default=None, repr=False, compare=False)
    _faults: object = field(default=None, repr=False, compare=False)
    _kernel_cache: object = field(default=None, repr=False, compare=False)

    @property
    def backend(self):
        """Per-backend dispatch counters (``REPRO_BACKEND``): kernels
        built, compile seconds, launches and sim-fallbacks per backend
        (:class:`repro.driver.backends.BackendStats`)."""
        from ..driver.backends import BackendStats

        return (self._kernel_cache.backend if self._kernel_cache
                else BackendStats())

    @property
    def overlap_fraction(self) -> float:
        """Fraction of serial modeled time hidden by lane overlap."""
        return self._runtime.timeline.overlap_fraction if self._runtime else 0.0

    @property
    def lane_busy_s(self) -> dict:
        """Busy seconds per timeline lane (compute/h2d/d2h/...)."""
        return self._runtime.timeline.lane_busy() if self._runtime else {}

    @property
    def critical_path_s(self) -> float:
        """Duration of the longest dependent chain on the timeline."""
        return self._runtime.timeline.critical_path_s if self._runtime else 0.0

    @property
    def cache(self) -> CacheStats:
        """The field software-cache counters (hits, spills, HWM...)."""
        return self._field_cache.stats if self._field_cache else CacheStats()

    # -- fault-injection outcomes (zero unless a plan is active) -------

    @property
    def _fault_counters(self):
        from ..faults.plan import ZERO_COUNTERS

        return self._faults.counters if self._faults else ZERO_COUNTERS

    @property
    def faults_injected(self) -> int:
        """Faults injected by the active plan (0 when faults are off)."""
        return self._fault_counters.injected

    @property
    def faults_recovered(self) -> int:
        """Injected faults whose recovery completed."""
        return self._fault_counters.recovered

    @property
    def retries(self) -> int:
        """Recovery retries performed (relaunch/retransmit/realloc)."""
        return self._fault_counters.retries

    @property
    def backoff_s(self) -> float:
        """Modeled seconds spent in recovery backoff."""
        return self._fault_counters.backoff_s

    @property
    def solver_restarts(self) -> int:
        """CG restarts triggered by the true-residual defect guard."""
        return self._fault_counters.solver_restarts


class ModuleCache(dict):
    """The generated-PTX module cache, with hit/miss accounting.

    A plain dict keyed by structural expression signature; the
    evaluator, the reduction builder and the fusion engine go through
    :meth:`lookup` so the context's stats record how often a launch
    reused an existing module versus generating a new one — the
    "kernels are compiled once, launched thousands of times" claim of
    the paper, now measurable (``repro.lint --json`` reports it).
    """

    def __init__(self, stats: ContextStats):
        super().__init__()
        self._stats = stats

    def lookup(self, key):
        """Counted :meth:`dict.get`: the cache-consulting lookup."""
        entry = super().get(key)
        if entry is None:
            self._stats.module_cache_misses += 1
        else:
            self._stats.module_cache_hits += 1
        return entry


class Context:
    """Framework state for one (simulated) GPU.

    A context may *own* its device (the default: a fresh
    :class:`Device` per context) or *share* one passed in via
    ``device=`` — the multi-tenant serving layer
    (:mod:`repro.serve`) creates one context per tenant over a single
    shared device pool and stream runtime.  Likewise ``kernel_cache=``
    injects a shared compiled-kernel cache so tenants reuse each
    other's driver-JIT work; both default to private instances, so
    single-context callers see no change.

    Contexts also support *scoped activation*::

        with ctx:
            ...   # default_context() resolves to ctx in this block

    which is how concurrent sessions avoid leaking state through the
    lazily-created module-level default context: activation nests like
    a stack and always restores the previous resolution on exit.
    """

    def __init__(self, spec: DeviceSpec = K20X_ECC_OFF,
                 pool_capacity: int | None = None,
                 autotune: bool = True,
                 default_block_size: int = 128,
                 fusion: bool | None = None,
                 faults=None,
                 device: Device | None = None,
                 kernel_cache: KernelCache | None = None):
        from .fusion import FusionQueue

        if device is not None:
            # a shared device: spec/pool_capacity/faults belong to its
            # owner (the serving layer), not to this context
            self.device = device
        else:
            self.device = Device(spec, pool_capacity=pool_capacity,
                                 faults=faults)
        self.kernel_cache = (kernel_cache if kernel_cache is not None
                             else KernelCache())
        self.field_cache = FieldCache(self.device)
        self.autotuner = Autotuner(self.device) if autotune else None
        self.default_block_size = default_block_size
        self.stats = ContextStats(_runtime=self.device.runtime,
                                  _field_cache=self.field_cache,
                                  _faults=self.device.faults,
                                  _kernel_cache=self.kernel_cache)
        #: structural expression signature -> (PTXModule, plan, compiled)
        self.module_cache: ModuleCache = ModuleCache(self.stats)
        #: kernel name -> ptx.absint.KernelEnv covering every launch
        #: binding seen so far (widened across launches); feeds the
        #: abstract-interpretation verifier passes and repro.lint
        self.analysis_envs: dict[str, object] = {}
        #: deferred-evaluation queue (``fusion=None`` consults the
        #: ``REPRO_FUSION`` knob; an explicit bool overrides it)
        self.fusion = FusionQueue(self, enabled=fusion)
        #: host access to any cached field drains the queue first
        self.field_cache.flush_hook = self.fusion.flush
        #: uploaded int32 tables (shift maps, subset site lists):
        #: key -> (addr, length)
        self._tables: dict[object, tuple[int, int]] = {}

    def flush(self) -> None:
        """Launch every pending (deferred) statement now."""
        self.fusion.flush()

    # -- scoped activation ----------------------------------------------

    def __enter__(self) -> "Context":
        """Activate this context: :func:`default_context` resolves to
        it until the matching exit.  Activations nest (a stack)."""
        _active_stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not _active_stack or _active_stack[-1] is not self:
            raise RuntimeError(
                "context activation stack out of order: exiting a "
                "context that is not the innermost active one")
        _active_stack.pop()

    # -- device-resident int32 tables -----------------------------------

    def upload_table(self, key, values) -> int:
        """Upload (once) an int32 table; returns its device address.

        Used for shift gather maps and subset site lists.  Tables are
        immutable and never spilled (they are small compared to
        fields and regeneration would thrash).
        """
        import numpy as np

        entry = self._tables.get(key)
        if entry is not None:
            return entry[0]
        arr = np.ascontiguousarray(values, dtype=np.int32)
        # through the cache's spill-and-retry path: an (injected or
        # real) OOM here evicts LRU fields instead of failing the run
        addr = self.field_cache._allocate_with_spill(arr.nbytes, set())
        self.device.memcpy_htod(addr, arr)
        self._tables[key] = (addr, arr.size)
        return addr

    def drop_tables(self) -> None:
        for addr, _ in self._tables.values():
            self.device.mem_free(addr)
        self._tables.clear()


_default_context: Context | None = None

#: scoped-activation stack (``with ctx: ...``); the innermost active
#: context shadows the module-level default so concurrent sessions
#: never leak state through the lazily-created singleton
_active_stack: list[Context] = []


def qdp_init(spec: DeviceSpec = K20X_ECC_OFF, **kwargs) -> Context:
    """(Re)initialize the default global context, QDP++-style."""
    global _default_context
    _default_context = Context(spec, **kwargs)
    return _default_context


def default_context() -> Context:
    """The context unqualified operations run against.

    An explicitly activated context (``with ctx:`` — innermost wins)
    takes precedence; otherwise the module-level default, created
    lazily on first use.  Existing single-context callers never
    activate anything and see the unchanged singleton behavior.
    """
    if _active_stack:
        return _active_stack[-1]
    global _default_context
    if _default_context is None:
        _default_context = Context()
    return _default_context


def set_default_context(ctx: Context | None) -> None:
    global _default_context
    _default_context = ctx

"""Deferred evaluation: the statement queue and kernel-fusion engine.

The paper's expression templates collapse one *expression* into one
kernel; this module extends the same idea across *statements*.  An
assignment no longer launches immediately — it enters the context's
:class:`FusionQueue` as a :class:`Statement` carrying the data-hazard
facts of its (already normalized) AST.  A small list scheduler places
each incoming statement into the earliest compatible *group*: an
ordered set of statements over the same lattice and subset with no
cross-statement shift hazard between them.  At a barrier the queue
drains in order; multi-statement groups compile into a single
multi-output kernel (:func:`repro.core.codegen.build_fused_kernel`)
with common-subexpression elimination and register-forwarded
intermediates, so the axpy chains of the Krylov solvers read and write
each field once instead of once per statement.

Hazard model (the PR-1 lint walk provides the read sets):

* plain read-after-write inside a group is *forwarded* — the consumer
  uses the producer's register value, eliminating a store/load pair's
  traffic (the store still happens; the re-load does not);
* a **shifted** read of any field written by a group is a barrier: the
  writer thread and the reader thread differ, so the statements must
  be separate launches (exactly the race the ``shift-alias`` lint
  describes);
* write-after-write to one field keeps the launches separate as well —
  fusing them would dead-store the first write, which is a semantic
  change this engine deliberately avoids;
* reductions, host access (``to_numpy`` / ``from_numpy`` /
  ``gaussian``), comm exchanges and explicit :meth:`Context.flush`
  drain the queue.  A reduction whose operands are compatible with the
  trailing group is *absorbed* into it: the group's kernel also writes
  the per-thread partials, saving the separate partials launch.

Single-statement groups take the unchanged pre-fusion launch path, so
their kernels, cache keys and byte accounting are identical to the
eager evaluator's.  The ``REPRO_FUSION`` knob (default ``on``)
restores fully eager evaluation with ``off``; results are bitwise
identical either way — fusion changes *where* values flow (registers
vs memory), never the arithmetic that produces them.
"""

from __future__ import annotations

import hashlib

from typing import TYPE_CHECKING

from ..diagnostics import fusion_mode, verify_mode
from ..ir.pipeline import prepare_module
from ..ptx.absint import KernelEnv, MemRegion, merge_envs, table_region
from ..ptx.verifier import verify
from .codegen import build_fused_kernel
from .expr import Expr, FieldRef, SlotAssigner, _spec_sig
from .lint import _walk

if TYPE_CHECKING:
    from .context import Context

#: Upper bound on statements fused into one kernel — a register-
#: pressure guard, not a correctness limit (the autotuner sees the
#: real register count either way).
MAX_GROUP_STATEMENTS = 8

#: Upper bound on pending groups before an automatic drain.
MAX_PENDING_GROUPS = 32


def _expr_facts(expr: Expr) -> tuple[set[int], set[int]]:
    """(plain-read uids, shift-read uids) of a normalized AST."""
    reads: set[int] = set()
    shift_reads: set[int] = set()
    for node, under_shift in _walk(expr):
        if isinstance(node, FieldRef):
            (shift_reads if under_shift else reads).add(node.field.uid)
    return reads, shift_reads


class Statement:
    """One pending ``dest = expr`` assignment."""

    __slots__ = ("dest", "expr", "subset", "subset_mode", "lattice",
                 "reads", "shift_reads", "temps", "cost")

    def __init__(self, dest, expr: Expr, subset, temps):
        self.dest = dest
        self.expr = expr
        self.subset = subset
        self.subset_mode = not subset.is_full
        self.lattice = dest.lattice
        self.reads, self.shift_reads = _expr_facts(expr)
        self.temps = temps
        self.cost = None


class ReductionJob:
    """A reduction's partials pass, candidate for tail-group fusion."""

    __slots__ = ("kind", "exprs", "subset", "lattice", "reads",
                 "shift_reads", "complex_out")

    def __init__(self, kind: str, exprs, subset, lattice):
        self.kind = kind
        self.exprs = list(exprs)
        self.subset = subset
        self.lattice = lattice
        self.reads = set()
        self.shift_reads = set()
        for e in self.exprs:
            r, s = _expr_facts(e)
            self.reads |= r
            self.shift_reads |= s
        self.complex_out = kind in ("sum", "inner")


class Group:
    """An ordered run of statements that will launch as one kernel."""

    __slots__ = ("lattice", "subset", "subset_mode", "stmts", "writes",
                 "reads", "shift_reads")

    def __init__(self, stmt: Statement):
        self.lattice = stmt.lattice
        self.subset = stmt.subset
        self.subset_mode = stmt.subset_mode
        self.stmts = [stmt]
        self.writes = {stmt.dest.uid}
        self.reads = set(stmt.reads)
        self.shift_reads = set(stmt.shift_reads)

    def add(self, stmt: Statement) -> None:
        self.stmts.append(stmt)
        self.writes.add(stmt.dest.uid)
        self.reads |= stmt.reads
        self.shift_reads |= stmt.shift_reads


class PendingCost:
    """Lazy :class:`~repro.device.memmodel.KernelCost` of a queued
    statement.

    Reading any attribute (``time_s``, ``bytes_moved``, ...) is a
    barrier: the queue drains and the attribute comes from the real
    cost of the launch that executed the statement.  For a fused
    multi-statement group every member reports the *group's* kernel
    cost — the launch is genuinely shared.
    """

    __slots__ = ("_queue", "_stmt")

    def __init__(self, queue: "FusionQueue", stmt: Statement):
        self._queue = queue
        self._stmt = stmt

    def _resolve(self):
        if self._stmt.cost is None:
            self._queue.flush()
        return self._stmt.cost

    def __getattr__(self, name):
        return getattr(self._resolve(), name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "pending" if self._stmt.cost is None else repr(self._stmt.cost)
        return f"<PendingCost {state}>"


class FusionQueue:
    """Per-context deferred-evaluation queue and group scheduler."""

    def __init__(self, ctx: "Context", enabled: bool | None = None):
        self.ctx = ctx
        self.enabled = (fusion_mode() == "on") if enabled is None else enabled
        self.groups: list[Group] = []
        self._flushing = False

    # -- scheduling ------------------------------------------------------

    def _dep_bound(self, g: Group, stmt: Statement) -> str | None:
        """How ``stmt`` may be placed relative to existing group ``g``.

        ``"after"``: a following launch (shift hazard or WAW) —
        placement strictly after ``g``.  ``"join"``: a plain-value
        dependency — ``stmt`` may share ``g`` (forwarding / in-kernel
        statement order handles it) or go later, but never earlier.
        ``None``: independent.
        """
        d = stmt.dest.uid
        if (g.writes & stmt.shift_reads) or d in g.shift_reads \
                or d in g.writes:
            return "after"
        if (g.writes & stmt.reads) or d in g.reads:
            return "join"
        return None

    def _compatible(self, g: Group, stmt: Statement) -> bool:
        # destination precision must match: the fused kernel's default
        # arithmetic type equals each member's eager kernel's, which
        # is what makes fusion bitwise-transparent
        return (g.lattice is stmt.lattice
                and g.subset_mode == stmt.subset_mode
                and (g.subset is stmt.subset
                     or g.subset.name == stmt.subset.name)
                and (stmt.dest.spec.precision
                     == g.stmts[0].dest.spec.precision)
                and len(g.stmts) < MAX_GROUP_STATEMENTS)

    def enqueue(self, dest, expr: Expr, subset, temps) -> PendingCost:
        if len(self.groups) >= MAX_PENDING_GROUPS:
            self.flush()
        stmt = Statement(dest, expr, subset, temps)
        lower = 0
        for i, g in enumerate(self.groups):
            bound = self._dep_bound(g, stmt)
            if bound == "after":
                lower = i + 1
            elif bound == "join":
                lower = max(lower, i)
        placed = False
        for i in range(lower, len(self.groups)):
            if self._compatible(self.groups[i], stmt):
                self.groups[i].add(stmt)
                placed = True
                break
        if not placed:
            self.groups.append(Group(stmt))
        return PendingCost(self, stmt)

    # -- barriers --------------------------------------------------------

    def flush(self) -> None:
        """Drain the queue: launch every pending group in order."""
        if self._flushing or not self.groups:
            return
        self._flushing = True
        try:
            while self.groups:
                g = self.groups.pop(0)
                _launch_group(self.ctx, g)
        finally:
            self._flushing = False

    def discard(self) -> None:
        """Drop every pending statement *without* launching.

        The serving layer's failed-session cleanup: when a session is
        rejected mid-flight (e.g. :class:`~repro.memory.cache.
        SpillImpossible` under admission pressure) its queued
        statements reference fields of a dead workload — launching
        them at the tenant's next barrier would replay the failure
        into an unrelated session.  Temporaries are still released.
        """
        while self.groups:
            g = self.groups.pop(0)
            _release_temps(self.ctx, g.stmts)

    def flush_for_reduction(self, job: ReductionJob) -> int | None:
        """Drain the queue for a reduction, absorbing it if possible.

        If the trailing group is compatible with ``job`` (same lattice
        and subset, none of its writes read through a shift by the
        reduction), the group's kernel also computes the reduction
        partials: returns the device scratch address holding them.
        Otherwise the queue just drains and ``None`` is returned — the
        caller runs the standalone partials kernel.
        """
        if self._flushing or not self.groups:
            return None
        tail = self.groups[-1]
        absorbable = (tail.lattice is job.lattice
                      and tail.subset_mode == (not job.subset.is_full)
                      and (tail.subset is job.subset
                           or tail.subset.name == job.subset.name)
                      and (job.exprs[0].spec.precision
                           == tail.stmts[0].dest.spec.precision)
                      and not (tail.writes & job.shift_reads))
        if not absorbable:
            self.flush()
            return None
        self.groups.pop()
        self.flush()
        self._flushing = True
        try:
            _, scratch = _launch_group(self.ctx, tail, reduction=job)
        finally:
            self._flushing = False
        return scratch


# -- group launch -----------------------------------------------------------


def _release_temps(ctx: "Context", stmts) -> None:
    for st in stmts:
        for t in st.temps:
            ctx.field_cache.release(t)


def _launch_group(ctx: "Context", group: Group,
                  reduction: ReductionJob | None = None):
    """Compile (or hit the module cache) and launch one group.

    Returns ``(KernelCost, scratch_address_or_None)``.  Single
    statements without an absorbed reduction go through the unchanged
    eager launch path so their kernels and byte accounting are
    identical to ``REPRO_FUSION=off``.
    """
    stmts = group.stmts
    if len(stmts) == 1 and reduction is None:
        from .evaluator import _launch_statement

        st = stmts[0]
        st.cost = _launch_statement(st.dest, st.expr, st.subset, ctx)
        _release_temps(ctx, stmts)
        return st.cost, None

    lattice = group.lattice
    subset = group.subset
    subset_mode = group.subset_mode
    n_active = len(subset)

    slots = SlotAssigner()
    parts = []
    for st in stmts:
        sig = st.expr.signature(slots)
        dslot = slots.field_slot(st.dest)
        parts.append(f"{sig}->D{dslot}:{_spec_sig(st.dest.spec)}")
    if reduction is not None:
        rsig = ",".join(e.signature(slots) for e in reduction.exprs)
        parts.append(f"red:{reduction.kind}({rsig})")
    key = ("fus:" + ";".join(parts)
           + ("|sub" if subset_mode else "|full"))

    env = _fused_env(lattice, subset, subset_mode, slots, reduction)

    entry = ctx.module_cache.lookup(key)
    if entry is None:
        name = "fus_" + hashlib.sha256(key.encode()).hexdigest()[:12]
        module = build_fused_kernel(
            name, [(st.dest, st.expr) for st in stmts],
            reduction=(None if reduction is None
                       else (reduction.kind, reduction.exprs)),
            subset_mode=subset_mode)
        module = prepare_module(module, stats=ctx.stats.ir)
        if verify_mode() != "off":
            verify(module, env=env)
        compiled, was_cached = ctx.kernel_cache.get_or_compile(module.render())
        if not was_cached:
            ctx.device.charge_jit(compiled.modeled_compile_seconds)
            ctx.stats.kernels_generated += 1
        entry = (module, None, compiled)
        ctx.module_cache[key] = entry
    module, _, compiled = entry
    prev = ctx.analysis_envs.get(module.name)
    ctx.analysis_envs[module.name] = (env if prev is None
                                      else merge_envs(prev, env))

    # -- paging: one make_available for the whole group's working set --
    written: set[int] = set()
    need_host: set[int] = set()
    for st in stmts:
        need_host |= {u for u in st.reads if u not in written}
        need_host |= st.shift_reads
        written.add(st.dest.uid)
    if reduction is not None:
        need_host |= {u for u in reduction.reads if u not in written}
        need_host |= reduction.shift_reads
    write_only = set() if subset_mode else (written - need_host)
    addrs = ctx.field_cache.make_available(slots.fields,
                                           write_only=write_only)

    # -- parameter binding (order mirrors build_fused_kernel) ----------
    params: dict[str, object] = {"p_lo": lattice.nsites, "p_n": n_active}
    if subset_mode:
        params["p_stab"] = ctx.upload_table(
            ("subset", lattice.dims, subset.name), subset.sites)
    from .evaluator import _shift_table

    for i, (mu, sign) in enumerate(slots.shifts):
        params[f"p_sh{i}"] = _shift_table(ctx, lattice, mu, sign)
    scratch = None
    if reduction is not None:
        from .reduction import ctx_scratch

        nbytes = n_active * 8 * (2 if reduction.complex_out else 1)
        scratch = ctx_scratch(ctx, nbytes)
        params["p_out_re"] = scratch
        if reduction.complex_out:
            params["p_out_im"] = scratch + n_active * 8
    for i, f in enumerate(slots.fields):
        params[f"p_f{i}"] = addrs[f.uid]
    for i, sn in enumerate(slots.scalar_slots):
        params[f"p_s{i}_re"] = sn.value.real
        if sn.spec.is_complex:
            params[f"p_s{i}_im"] = sn.value.imag

    precision = ("f64" if any(st.dest.spec.precision == "f64"
                              for st in stmts) else "f32")
    if ctx.autotuner is not None:
        cost = ctx.autotuner.launch(compiled, module.info, params, n_active,
                                    precision=precision)
    else:
        cost = ctx.device.launch(compiled, module.info, params, n_active,
                                 block_size=ctx.default_block_size,
                                 precision=precision)
    for st in stmts:
        ctx.field_cache.mark_device_dirty(st.dest)
        st.cost = cost
    _release_temps(ctx, stmts)
    ctx.stats.fusion_groups += 1
    ctx.stats.fused_statements += len(stmts)
    return cost, scratch


def _fused_env(lattice, subset, subset_mode: bool, slots: SlotAssigner,
               reduction: ReductionJob | None) -> KernelEnv:
    """Launch facts for the absint verifier — the fused analogue of
    :func:`repro.core.evaluator._analysis_env` (destinations are
    ordinary ``p_f`` regions here; partials buffers when absorbed)."""
    nsites = lattice.nsites
    regions = {}
    for i, f in enumerate(slots.fields):
        regions[f"p_f{i}"] = MemRegion(f"p_f{i}",
                                       nsites * f.spec.bytes_per_site)
    for i, (mu, sign) in enumerate(slots.shifts):
        regions[f"p_sh{i}"] = table_region(f"p_sh{i}",
                                           lattice.shift_map(mu, sign))
    if subset_mode:
        regions["p_stab"] = table_region("p_stab", subset.sites)
    if reduction is not None:
        regions["p_out_re"] = MemRegion("p_out_re", len(subset) * 8)
        if reduction.complex_out:
            regions["p_out_im"] = MemRegion("p_out_im", len(subset) * 8)
    return KernelEnv(scalars={"p_lo": nsites, "p_n": len(subset)},
                     regions=regions)

"""Global reductions: norm2, innerProduct, sum.

Reductions are two-stage, as on a real GPU: a generated PTX kernel
computes one f64 partial per thread (accumulating in double precision
regardless of field precision, as QDP-JIT does), and a device
primitive folds the partial buffer.  Only the final scalar crosses to
the host — fields are never paged out for a reduction.
"""

from __future__ import annotations

import hashlib

from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING

from ..ir.pipeline import prepare_module
from ..ptx.absint import MemRegion, merge_envs
from ..ptx.builder import KernelBuilder
from ..ptx.isa import PTXType
from ..ptx.module import PTXModule
from ..ptx.verifier import verify
from .codegen import CVal, Unparser, emit_reduction_partials

if TYPE_CHECKING:
    from ..qdp.lattice import Subset
from .context import Context
from .evaluator import _analysis_env, _normalize, _shift_table
from .expr import Expr, ExprTypeError, FieldRef, SlotAssigner, as_expr
from .fusion import ReductionJob


class ReductionError(Exception):
    pass


def _find_field(expr: Expr):
    if isinstance(expr, FieldRef):
        return expr.field
    for c in expr.children():
        f = _find_field(c)
        if f is not None:
            return f
    return None


def _build_reduction_kernel(name: str, kind: str, exprs: list[Expr],
                            slots: SlotAssigner, subset_mode: bool):
    """Generate the partials kernel for a reduction.

    ``kind``: ``norm2`` (sum of |component|^2), ``sum`` (component sum
    of a scalar-shaped expression, complex out) or ``inner``
    (sum over components of conj(a)*b, complex out).
    """
    kb = KernelBuilder(name)
    p_lo = kb.add_param("p_lo", PTXType.S32)
    p_n = kb.add_param("p_n", PTXType.S32)
    p_stab = (kb.add_param("p_stab", PTXType.U64, is_pointer=True)
              if subset_mode else None)
    p_shifts = [kb.add_param(f"p_sh{i}", PTXType.U64, is_pointer=True)
                for i in range(len(slots.shifts))]
    complex_out = kind in ("sum", "inner")
    p_out_re = kb.add_param("p_out_re", PTXType.U64, is_pointer=True)
    p_out_im = (kb.add_param("p_out_im", PTXType.U64, is_pointer=True)
                if complex_out else None)
    p_fields = [kb.add_param(f"p_f{i}", PTXType.U64, is_pointer=True)
                for i in range(len(slots.fields))]
    scalar_params = []
    for i, sn in enumerate(slots.scalar_slots):
        ft = PTXType.F32 if sn.spec.precision == "f32" else PTXType.F64
        pre = kb.add_param(f"p_s{i}_re", ft)
        pim = kb.add_param(f"p_s{i}_im", ft) if sn.spec.is_complex else None
        scalar_params.append((pre, pim))

    up = Unparser(kb, slots, exprs[0].spec, subset_mode)
    up.nsites_reg = kb.ld_param(p_lo)
    n_active = kb.ld_param(p_n)
    stab_base = kb.ld_param(p_stab) if subset_mode else None
    up._shift_bases = [kb.ld_param(p) for p in p_shifts]
    out_re_base = kb.ld_param(p_out_re)
    out_im_base = kb.ld_param(p_out_im) if p_out_im is not None else None
    up._leaf_bases = [kb.ld_param(p) for p in p_fields]
    for (pre, pim) in scalar_params:
        re = kb.ld_param(pre)
        im = kb.ld_param(pim) if pim is not None else None
        up._scalar_vals.append(CVal(re=re, im=im))

    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n_active)
    exit_lbl = kb.new_label("EXIT")
    kb.bra(exit_lbl, guard=oob)
    if subset_mode:
        g64 = kb.cvt(gid, PTXType.S64)
        off = kb.mul(g64, kb.imm(4, PTXType.S64))
        addr = kb.add(stab_base, kb.cvt(off, PTXType.U64))
        up.site_reg = kb.ld_global(addr, PTXType.S32)
    else:
        up.site_reg = gid
    up._view_sites[None] = up.site_reg

    emit_reduction_partials(up, kind, exprs, out_re_base, out_im_base, gid)
    kb.label(exit_lbl)
    kb.ret()
    return PTXModule.from_builder(kb)


def _validate(kind: str, exprs: list[Expr]) -> None:
    """Shape checks, up front so fused and standalone paths agree."""
    spec = exprs[0].spec
    if kind == "sum" and (spec.spin or spec.color):
        raise ReductionError(
            "sum() needs a scalar-shaped expression; trace first")
    if kind == "inner":
        a, b = exprs
        if a.spec.spin != b.spec.spin or a.spec.color != b.spec.color:
            raise ExprTypeError("innerProduct shape mismatch")
    if kind not in ("norm2", "sum", "inner"):
        raise ReductionError(f"unknown reduction kind {kind!r}")


def _reduce(kind: str, exprs: list[Expr], subset: Subset | None,
            context: Context | None):
    exprs = [as_expr(e) for e in exprs]
    f0 = _find_field(exprs[0])
    if f0 is None:
        raise ReductionError("reduction needs at least one lattice field")
    ctx = context if context is not None else f0.context
    lattice = f0.lattice
    if subset is None:
        subset = lattice.all_sites
    temps: list = []
    exprs = [_normalize(e, f0, ctx, temps) for e in exprs]
    _validate(kind, exprs)

    n_active = len(subset)
    complex_out = kind in ("sum", "inner")

    # a reduction is a queue barrier; if the trailing pending group is
    # compatible, its fused kernel also writes our partials and the
    # separate partials launch disappears entirely
    scratch = None
    if ctx.fusion.enabled:
        job = ReductionJob(kind, exprs, subset, lattice)
        scratch = ctx.fusion.flush_for_reduction(job)

    if scratch is None:
        scratch = _launch_partials(ctx, kind, exprs, subset, lattice,
                                   n_active, complex_out)
    for t in temps:
        ctx.field_cache.release(t)
    ctx.stats.reductions += 1
    re = ctx.device.reduce_f64(scratch, n_active)
    if complex_out:
        im = ctx.device.reduce_f64(scratch + n_active * 8, n_active)
        return complex(re, im)
    return re


def _launch_partials(ctx: Context, kind: str, exprs: list[Expr],
                     subset, lattice, n_active: int,
                     complex_out: bool) -> int:
    """The standalone partials kernel (pre-fusion launch path)."""
    slots = SlotAssigner()
    sigs = ",".join(e.signature(slots) for e in exprs)
    subset_mode = not subset.is_full
    key = f"red:{kind}({sigs})|{'sub' if subset_mode else 'full'}"

    # launch env for the analysis passes: the expression env minus the
    # destination field, plus the f64 partials buffer(s)
    env = _analysis_env(lattice, subset, subset_mode, slots,
                        exprs[0].spec)
    regions = dict(env.regions)
    del regions["p_dst"]
    regions["p_out_re"] = MemRegion("p_out_re", len(subset) * 8)
    if complex_out:
        regions["p_out_im"] = MemRegion("p_out_im", len(subset) * 8)
    env = dc_replace(env, regions=regions)

    entry = ctx.module_cache.lookup(key)
    if entry is None:
        name = "red_" + hashlib.sha256(key.encode()).hexdigest()[:12]
        module = _build_reduction_kernel(name, kind, exprs, slots,
                                         subset_mode)
        module = prepare_module(module, stats=ctx.stats.ir)
        verify(module, env=env)
        compiled, was_cached = ctx.kernel_cache.get_or_compile(module.render())
        if not was_cached:
            ctx.device.charge_jit(compiled.modeled_compile_seconds)
            ctx.stats.kernels_generated += 1
        entry = (module, compiled)
        ctx.module_cache[key] = entry
    module, compiled = entry
    prev = ctx.analysis_envs.get(module.name)
    ctx.analysis_envs[module.name] = (env if prev is None
                                      else merge_envs(prev, env))

    scratch = ctx_scratch(ctx, n_active * 8 * (2 if complex_out else 1))
    addrs = ctx.field_cache.make_available(slots.fields)

    params = {"p_lo": lattice.nsites, "p_n": n_active,
              "p_out_re": scratch}
    if complex_out:
        params["p_out_im"] = scratch + n_active * 8
    if subset_mode:
        params["p_stab"] = ctx.upload_table(
            ("subset", lattice.dims, subset.name), subset.sites)
    for i, (mu, sign) in enumerate(slots.shifts):
        params[f"p_sh{i}"] = _shift_table(ctx, lattice, mu, sign)
    for i, f in enumerate(slots.fields):
        params[f"p_f{i}"] = addrs[f.uid]
    for i, sn in enumerate(slots.scalar_slots):
        params[f"p_s{i}_re"] = sn.value.real
        if sn.spec.is_complex:
            params[f"p_s{i}_im"] = sn.value.imag

    precision = exprs[0].spec.precision
    if ctx.autotuner is not None:
        ctx.autotuner.launch(compiled, module.info, params, n_active,
                             precision=precision)
    else:
        ctx.device.launch(compiled, module.info, params, n_active,
                          block_size=ctx.default_block_size,
                          precision=precision)
    return scratch


def ctx_scratch(ctx: Context, nbytes: int) -> int:
    """A grow-only scratch allocation on the context's device."""
    cur = getattr(ctx, "_scratch", None)
    if cur is not None and cur[1] >= nbytes:
        return cur[0]
    if cur is not None:
        ctx.device.mem_free(cur[0])
    addr = ctx.field_cache._allocate_with_spill(nbytes, set())
    ctx._scratch = (addr, nbytes)
    return addr


# -- public API ---------------------------------------------------------------

def norm2(x, subset: Subset | None = None, context: Context | None = None
          ) -> float:
    """``norm2(x)``: the squared 2-norm, summed over all components
    and (subset) sites.  Always accumulated in double precision."""
    return _reduce("norm2", [x], subset, context)


def innerProduct(a, b, subset: Subset | None = None,
                 context: Context | None = None) -> complex:
    """``<a|b>`` with the physics convention: conjugate on the left."""
    return _reduce("inner", [a, b], subset, context)


def innerProductReal(a, b, subset: Subset | None = None,
                     context: Context | None = None) -> float:
    """Real part of the inner product (one fewer reduction column
    would be possible; we reuse the complex kernel for simplicity)."""
    return _reduce("inner", [a, b], subset, context).real


def sum_sites(x, subset: Subset | None = None,
              context: Context | None = None) -> complex:
    """Sum a scalar-shaped (LatticeComplex/LatticeReal) expression
    over sites.  Use ``trace(...)`` to scalarize matrices first."""
    return _reduce("sum", [x], subset, context)

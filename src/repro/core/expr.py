"""Expression templates: the AST behind the data-parallel operators.

QDP++ implements its operator infix form with the PETE expression-
template library: overloaded operators return proxy objects whose
nesting gives the expression a tree structure (paper Fig. 3).  The
Python incarnation is direct — operators on fields and expression
nodes build an explicit AST of :class:`Expr` nodes.  As in QDP-JIT,
the AST is *never evaluated per site at runtime*: the unparser
(:mod:`repro.core.codegen`) walks it once and generates a PTX kernel.

Every node computes its result :class:`~repro.qdp.typesys.TypeSpec`
at construction (QDP++ does this with template metaprogramming), so
malformed expressions fail immediately with a typed error, and mixed
precision promotes implicitly (paper Sec. III-D).
"""

from __future__ import annotations

import numpy as np

from ..typesys import TypeSpec


class ExprTypeError(TypeError):
    """An expression combines incompatible QDP types."""


def _promote_precision(a: str, b: str) -> str:
    return "f64" if "f64" in (a, b) else "f32"


def _level_mul_shape(ls: tuple, rs: tuple, what: str) -> tuple:
    """Result shape of multiplication at one (spin/color) level."""
    if not ls:
        return rs
    if not rs:
        return ls
    if len(ls) == 2 and len(rs) == 1:
        if ls[1] != rs[0]:
            raise ExprTypeError(f"{what} matrix*vector dim mismatch {ls}x{rs}")
        return (ls[0],)
    if len(ls) == 2 and len(rs) == 2:
        if ls[1] != rs[0]:
            raise ExprTypeError(f"{what} matrix*matrix dim mismatch {ls}x{rs}")
        return (ls[0], rs[1])
    raise ExprTypeError(
        f"unsupported {what}-level multiplication {ls} x {rs} "
        f"(use localInnerProduct/outerProduct for vector*vector)")


def _level_mul_pairs(ls: tuple, rs: tuple, out_idx: tuple):
    """Contraction plan at one level: list of (lidx, ridx) to sum."""
    if not ls:
        return [((), out_idx)]
    if not rs:
        return [(out_idx, ())]
    if len(ls) == 2 and len(rs) == 1:
        (i,) = out_idx
        return [((i, k), (k,)) for k in range(ls[1])]
    if len(ls) == 2 and len(rs) == 2:
        i, j = out_idx
        return [((i, k), (k, j)) for k in range(ls[1])]
    raise ExprTypeError(f"no contraction plan for {ls} x {rs}")


def mul_spec(l: TypeSpec, r: TypeSpec) -> TypeSpec:
    """Result type of ``l * r`` under QDP++ level-wise semantics."""
    return TypeSpec(
        spin=_level_mul_shape(l.spin, r.spin, "spin"),
        color=_level_mul_shape(l.color, r.color, "color"),
        is_complex=l.is_complex or r.is_complex,
        precision=_promote_precision(l.precision, r.precision),
        is_lattice=l.is_lattice or r.is_lattice,
    )


def addsub_spec(l: TypeSpec, r: TypeSpec) -> TypeSpec:
    if l.spin != r.spin or l.color != r.color:
        raise ExprTypeError(
            f"add/sub shape mismatch: spin {l.spin} vs {r.spin}, "
            f"color {l.color} vs {r.color}")
    return TypeSpec(
        spin=l.spin, color=l.color,
        is_complex=l.is_complex or r.is_complex,
        precision=_promote_precision(l.precision, r.precision),
        is_lattice=l.is_lattice or r.is_lattice,
    )


class Expr:
    """Base class for AST nodes.  Carries the result type in ``spec``."""

    __slots__ = ("spec",)

    def __init__(self, spec: TypeSpec):
        self.spec = spec

    # -- operator infix form (the QDP++ user interface) -----------------

    def __add__(self, other):
        return BinaryNode("add", self, as_expr(other, like=self))

    def __radd__(self, other):
        return BinaryNode("add", as_expr(other, like=self), self)

    def __sub__(self, other):
        return BinaryNode("sub", self, as_expr(other, like=self))

    def __rsub__(self, other):
        return BinaryNode("sub", as_expr(other, like=self), self)

    def __mul__(self, other):
        return BinaryNode("mul", self, as_expr(other, like=self))

    def __rmul__(self, other):
        return BinaryNode("mul", as_expr(other, like=self), self)

    def __truediv__(self, other):
        if isinstance(other, (int, float)):
            return BinaryNode("mul", self,
                              ScalarParam(1.0 / other, self.spec.precision))
        raise ExprTypeError("division only by Python scalars")

    def __neg__(self):
        return UnaryNode("neg", self)

    # structural signature pieces

    def signature(self, slots: "SlotAssigner") -> str:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()


def _spec_sig(spec: TypeSpec) -> str:
    return (f"{spec.precision}:s{spec.spin}:c{spec.color}:"
            f"{'c' if spec.is_complex else 'r'}")


class SlotAssigner:
    """Assigns stable slots to leaves during a structural walk.

    Fields are slotted by identity (``uid``): two references to the
    *same* field share a slot, references to different fields get
    different slots — so ``u*u`` and ``u1*u2`` generate different
    kernels, as they must (different parameter lists).
    """

    def __init__(self):
        self.field_slots: dict[int, int] = {}
        self.fields: list[object] = []
        self.scalar_slots: list["ScalarParam"] = []
        self._scalar_ids: dict[int, int] = {}
        self.shift_slots: dict[tuple[int, int], int] = {}
        self.shifts: list[tuple[int, int]] = []

    def field_slot(self, field) -> int:
        slot = self.field_slots.get(field.uid)
        if slot is None:
            slot = len(self.fields)
            self.field_slots[field.uid] = slot
            self.fields.append(field)
        return slot

    def scalar_slot(self, node: "ScalarParam") -> int:
        key = id(node)
        slot = self._scalar_ids.get(key)
        if slot is None:
            slot = len(self.scalar_slots)
            self._scalar_ids[key] = slot
            self.scalar_slots.append(node)
        return slot

    def shift_slot(self, mu: int, sign: int) -> int:
        key = (mu, sign)
        slot = self.shift_slots.get(key)
        if slot is None:
            slot = len(self.shifts)
            self.shift_slots[key] = slot
            self.shifts.append(key)
        return slot


class FieldRef(Expr):
    """Leaf node: a reference to a lattice field.

    At kernel-build time this becomes a JIT data view (paper
    Sec. III-B); at launch time the memory cache pages the referenced
    field into device memory (paper Sec. IV).
    """

    __slots__ = ("field",)

    def __init__(self, field):
        super().__init__(field.spec)
        self.field = field

    def signature(self, slots: SlotAssigner) -> str:
        return f"F{slots.field_slot(self.field)}[{_spec_sig(self.spec)}]"


class ScalarParam(Expr):
    """A runtime scalar passed as a kernel parameter.

    Used for CG coefficients etc.: the kernel is compiled once and the
    value varies per launch (embedding it as an immediate would
    recompile on every solver iteration).
    """

    __slots__ = ("value",)

    def __init__(self, value, precision: str = "f64"):
        value = complex(value)
        is_complex = value.imag != 0.0
        super().__init__(TypeSpec(spin=(), color=(), is_complex=is_complex,
                                  precision=precision, is_lattice=False))
        self.value = value

    def signature(self, slots: SlotAssigner) -> str:
        kind = "c" if self.spec.is_complex else "r"
        return f"S{slots.scalar_slot(self)}{kind}:{self.spec.precision}"


class ScalarLit(Expr):
    """A compile-time scalar literal embedded in the kernel text."""

    __slots__ = ("value",)

    def __init__(self, value, precision: str = "f64"):
        value = complex(value)
        super().__init__(TypeSpec(spin=(), color=(),
                                  is_complex=value.imag != 0.0,
                                  precision=precision, is_lattice=False))
        self.value = value

    def signature(self, slots: SlotAssigner) -> str:
        return f"L({self.value.real!r},{self.value.imag!r})"


class ConstSpinMatrix(Expr):
    """A constant spin matrix (e.g. a gamma-matrix combination).

    The entries are embedded in the generated kernel as immediates;
    multiplications by exact zeros and +/-1 and +/-i are folded away
    by the code generator, so spin-projector arithmetic costs what it
    should.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix, precision: str = "f64"):
        m = np.asarray(matrix, dtype=complex)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ExprTypeError("ConstSpinMatrix requires a square matrix")
        super().__init__(TypeSpec(spin=m.shape, color=(), is_complex=True,
                                  precision=precision, is_lattice=False))
        self.matrix = m

    def signature(self, slots: SlotAssigner) -> str:
        return f"G{hash(self.matrix.tobytes()) & 0xFFFFFFFF:x}"


class BinaryNode(Expr):
    """Inner node: add / sub / mul (paper Fig. 3's BinaryNode)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op in ("add", "sub"):
            spec = addsub_spec(left.spec, right.spec)
        elif op == "mul":
            spec = mul_spec(left.spec, right.spec)
        else:
            raise ExprTypeError(f"unknown binary op {op!r}")
        super().__init__(spec)
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def signature(self, slots: SlotAssigner) -> str:
        return (f"{self.op}({self.left.signature(slots)},"
                f"{self.right.signature(slots)})")


#: Real-valued mathematical functions (paper Sec. III-D: PTX has no
#: libm; these lower to the pre-generated subroutine expansions of
#: :mod:`repro.core.fastmath`).
MATH_FNS = ("exp", "log", "sin", "cos", "tan", "sqrt", "rsqrt", "fabs")

_UNARY_SPECS = {
    "neg": lambda s: s,
    "conj": lambda s: s,
    "adj": lambda s: s.adjoint(),
    "transpose": lambda s: s.adjoint(),
    "timesI": lambda s: _require_complex(s, "timesI"),
    "timesMinusI": lambda s: _require_complex(s, "timesMinusI"),
    "real": lambda s: TypeSpec(s.spin, s.color, False, s.precision,
                               s.is_lattice),
    "imag": lambda s: TypeSpec(s.spin, s.color, False, s.precision,
                               s.is_lattice),
}
for _fn in MATH_FNS:
    _UNARY_SPECS[_fn] = (lambda s, _name=_fn: _require_real(s, _name))


def _require_complex(s: TypeSpec, what: str) -> TypeSpec:
    if not s.is_complex:
        raise ExprTypeError(f"{what} requires a complex operand")
    return s


def _require_real(s: TypeSpec, what: str) -> TypeSpec:
    if s.is_complex:
        raise ExprTypeError(
            f"{what} requires a real operand (take real()/imag() first)")
    return s


class UnaryNode(Expr):
    """Inner node: neg / conj / adj / transpose / timesI / real / imag."""

    __slots__ = ("op", "child")

    def __init__(self, op: str, child: Expr):
        fn = _UNARY_SPECS.get(op)
        if fn is None:
            raise ExprTypeError(f"unknown unary op {op!r}")
        super().__init__(fn(child.spec))
        self.op = op
        self.child = child

    def children(self):
        return (self.child,)

    def signature(self, slots: SlotAssigner) -> str:
        return f"{self.op}({self.child.signature(slots)})"


class TraceNode(Expr):
    """traceSpin / traceColor / trace (both)."""

    __slots__ = ("which", "child")

    def __init__(self, which: str, child: Expr):
        s = child.spec
        spin, color = s.spin, s.color
        if which == "spin" and len(spin) != 2:
            raise ExprTypeError("traceSpin requires a spin matrix")
        if which == "color" and len(color) != 2:
            raise ExprTypeError("traceColor requires a color matrix")
        # trace over whatever matrix levels exist; scalar/vector levels
        # pass through untouched (QDP++ trace semantics)
        if which in ("spin", "both") and len(spin) == 2:
            spin = ()
        if which in ("color", "both") and len(color) == 2:
            color = ()
        super().__init__(TypeSpec(spin, color, s.is_complex, s.precision,
                                  s.is_lattice))
        self.which = which
        self.child = child

    def children(self):
        return (self.child,)

    def signature(self, slots: SlotAssigner) -> str:
        return f"trace_{self.which}({self.child.signature(slots)})"


class ShiftNode(Expr):
    """The nearest-neighbor shift (paper Sec. II-C).

    The child must be a :class:`FieldRef`; ``shift`` of a general
    expression is materialized into a temporary first (QDP++ does the
    same).  The unparser turns this node into an indirected load
    through the (mu, sign) gather table; in multi-rank runs the face
    entries point into the receive buffer (paper Sec. V).
    """

    __slots__ = ("child", "mu", "sign")

    def __init__(self, child: Expr, mu: int, sign: int):
        if sign not in (+1, -1):
            raise ExprTypeError("shift sign must be +1 (FORWARD)/-1 (BACKWARD)")
        super().__init__(child.spec)
        self.child = child
        self.mu = mu
        self.sign = sign

    def children(self):
        return (self.child,)

    def signature(self, slots: SlotAssigner) -> str:
        sl = slots.shift_slot(self.mu, self.sign)
        return f"shift{sl}({self.child.signature(slots)})"


class CustomOpNode(Expr):
    """A user-defined operation with its own code generator.

    This is the extension mechanism of paper Sec. VI-A: operations
    that mix the spin and color index spaces (like the clover term)
    cannot be expressed through the level-wise operators, but can
    plug a custom component-generator into the same kernel-generation
    machinery.  ``gen`` is called by the unparser as
    ``gen(ctx, operand_values, sidx, cidx)`` and must return a CVal.
    """

    __slots__ = ("name", "operands", "gen")

    def __init__(self, name: str, operands: tuple[Expr, ...],
                 result_spec: TypeSpec, gen):
        super().__init__(result_spec)
        self.name = name
        self.operands = tuple(operands)
        self.gen = gen

    def children(self):
        return self.operands

    def signature(self, slots: SlotAssigner) -> str:
        inner = ",".join(o.signature(slots) for o in self.operands)
        return f"{self.name}({inner})"


def as_expr(x, like: Expr | None = None) -> Expr:
    """Coerce a Python value into an expression node."""
    if isinstance(x, Expr):
        return x
    if hasattr(x, "spec") and hasattr(x, "uid"):  # a field
        return FieldRef(x)
    if isinstance(x, (int, float, complex, np.integer, np.floating,
                      np.complexfloating)):
        prec = like.spec.precision if like is not None else "f64"
        return ScalarParam(complex(x), prec)
    raise ExprTypeError(f"cannot use {type(x).__name__} in a QDP expression")


# -- free functions of the QDP++ interface ---------------------------------

def adj(x) -> Expr:
    """Hermitian adjoint (transpose both matrix levels + conjugate)."""
    return UnaryNode("adj", as_expr(x))


def conj(x) -> Expr:
    """Complex conjugate (no transposition)."""
    return UnaryNode("conj", as_expr(x))


def transpose(x) -> Expr:
    """Transpose both matrix levels (no conjugation)."""
    return UnaryNode("transpose", as_expr(x))


def timesI(x) -> Expr:
    """Multiply by the imaginary unit (zero-flop structural rotation)."""
    return UnaryNode("timesI", as_expr(x))


def timesMinusI(x) -> Expr:
    return UnaryNode("timesMinusI", as_expr(x))


def real(x) -> Expr:
    return UnaryNode("real", as_expr(x))


def imag(x) -> Expr:
    return UnaryNode("imag", as_expr(x))


def trace(x) -> Expr:
    """Trace over spin and color."""
    return TraceNode("both", as_expr(x))


def traceSpin(x) -> Expr:
    return TraceNode("spin", as_expr(x))


def traceColor(x) -> Expr:
    return TraceNode("color", as_expr(x))


def shift(x, sign: int, mu: int) -> Expr:
    """QDP++ ``shift(x, sign, mu)``: grid displacement by one site.

    ``shift(phi, FORWARD, mu)(x) = phi(x + mu_hat)``.
    """
    return ShiftNode(as_expr(x), mu, sign)


# -- mathematical functions (real-valued; paper Sec. III-D) ----------------

def exp(x) -> Expr:
    """Elementwise exp (lowered to the ex2 subroutine)."""
    return UnaryNode("exp", as_expr(x))


def log(x) -> Expr:
    """Elementwise natural log (lowered to lg2 * ln 2)."""
    return UnaryNode("log", as_expr(x))


def sin(x) -> Expr:
    return UnaryNode("sin", as_expr(x))


def cos(x) -> Expr:
    return UnaryNode("cos", as_expr(x))


def tan(x) -> Expr:
    """sin/cos subroutine composition."""
    return UnaryNode("tan", as_expr(x))


def sqrt(x) -> Expr:
    return UnaryNode("sqrt", as_expr(x))


def rsqrt(x) -> Expr:
    """1/sqrt(x) — the hardware approximation instruction."""
    return UnaryNode("rsqrt", as_expr(x))


def fabs(x) -> Expr:
    return UnaryNode("fabs", as_expr(x))


class PowNode(Expr):
    """x^p for a compile-time exponent (structural constant)."""

    __slots__ = ("child", "exponent")

    def __init__(self, child: Expr, exponent: float):
        super().__init__(_require_real(child.spec, "pow"))
        self.child = child
        self.exponent = float(exponent)

    def children(self):
        return (self.child,)

    def signature(self, slots: SlotAssigner) -> str:
        return f"pow[{self.exponent!r}]({self.child.signature(slots)})"


def pow_const(x, exponent: float) -> Expr:
    """Elementwise x**p; small integer p unrolls into multiplies."""
    return PowNode(as_expr(x), exponent)

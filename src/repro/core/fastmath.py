"""Mathematical functions in generated kernels (paper Sec. III-D).

PTX has no C math library: only the "fastmath" hardware
approximations (``sin.approx``, ``cos.approx``, ``ex2.approx``,
``lg2.approx``, ``sqrt``, ``rsqrt``) exist.  The paper works around
this by pre-generating PTX subroutines for the precise functions and
having the code generator "silently issue calls to the appropriate
subroutine every time a mathematical function is requested".

This module is that mechanism: each function is an inline PTX
expansion built from the available instructions (e.g. ``exp`` via
``ex2`` with an exact base-conversion constant).  Simulated-device
note: our driver JIT implements the ``.approx`` instructions at full
NumPy precision, so the reduced-accuracy caveat of real fastmath does
not bite here (documented deviation, DESIGN.md).
"""

from __future__ import annotations

import math

from ..ptx.builder import KernelBuilder
from ..ptx.isa import PTXType, Register

#: log2(e) and ln(2) to full double precision — the conversion
#: constants of the exp/log subroutines.
LOG2_E = math.log2(math.e)
LN_2 = math.log(2.0)


def emit_exp(kb: KernelBuilder, x: Register, t: PTXType) -> Register:
    """exp(x) = 2^(x * log2 e)."""
    scaled = kb.mul(x, kb.imm(LOG2_E, t), t)
    return kb.unary("ex2", scaled, t)


def emit_log(kb: KernelBuilder, x: Register, t: PTXType) -> Register:
    """log(x) = lg2(x) * ln 2."""
    l2 = kb.unary("lg2", x, t)
    return kb.mul(l2, kb.imm(LN_2, t), t)


def emit_sin(kb: KernelBuilder, x: Register, t: PTXType) -> Register:
    return kb.unary("sin", x, t)


def emit_cos(kb: KernelBuilder, x: Register, t: PTXType) -> Register:
    return kb.unary("cos", x, t)


def emit_tan(kb: KernelBuilder, x: Register, t: PTXType) -> Register:
    """tan = sin / cos — the subroutine composition the paper's
    pre-generated kernels use."""
    s = kb.unary("sin", x, t)
    c = kb.unary("cos", x, t)
    return kb.div(s, c, t)


def emit_sqrt(kb: KernelBuilder, x: Register, t: PTXType) -> Register:
    return kb.unary("sqrt", x, t)


def emit_rsqrt(kb: KernelBuilder, x: Register, t: PTXType) -> Register:
    return kb.unary("rsqrt", x, t)


def emit_fabs(kb: KernelBuilder, x: Register, t: PTXType) -> Register:
    return kb.unary("abs", x, t)


def emit_pow(kb: KernelBuilder, x: Register, exponent: float,
             t: PTXType) -> Register:
    """x^p for a compile-time exponent: 2^(p * lg2 x).

    Small integer exponents unroll into multiplies instead (cheaper
    and exact), mirroring what a real code generator does.
    """
    if exponent == int(exponent) and 1 <= abs(exponent) <= 4:
        n = int(abs(exponent))
        acc = x
        for _ in range(n - 1):
            acc = kb.mul(acc, x, t)
        if exponent < 0:
            acc = kb.unary("rcp", acc, t)
        return acc
    l2 = kb.unary("lg2", x, t)
    scaled = kb.mul(l2, kb.imm(exponent, t), t)
    return kb.unary("ex2", scaled, t)


#: op name -> emitter, the dispatch table the unparser consults.
MATH_EMITTERS = {
    "exp": emit_exp,
    "log": emit_log,
    "sin": emit_sin,
    "cos": emit_cos,
    "tan": emit_tan,
    "sqrt": emit_sqrt,
    "rsqrt": emit_rsqrt,
    "fabs": emit_fabs,
}

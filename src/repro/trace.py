"""``python -m repro.trace`` — stream-runtime trace summary CLI.

Thin entry point; the implementation lives in
:mod:`repro.runtime.trace` next to the Chrome-trace exporter.
"""

from .runtime.trace import main

if __name__ == "__main__":
    import sys

    sys.exit(main())
